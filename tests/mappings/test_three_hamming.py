"""Tests for the 3-Hamming plan-decomposition mapping (Appendix C/D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mappings import (
    ThreeHammingMapping,
    check_against_exact,
    check_bijection,
    check_roundtrip,
    flat_to_triple,
    triple_to_flat,
)


class TestNeighborhoodSize:
    @pytest.mark.parametrize(
        "n,expected",
        [(3, 1), (4, 4), (6, 20), (73, 62196), (101, 166650), (117, 260130)],
    )
    def test_size_formula(self, n, expected):
        mapping = ThreeHammingMapping(n)
        assert mapping.size == expected
        assert mapping.size == n * (n - 1) * (n - 2) // 6

    def test_paper_max_iterations_match_table_values(self):
        # Table I reports the stopping criterion n(n-1)(n-2)/6 for 101x101 and
        # 101x117 as 166650 and 260130 iterations, which pins down n.
        assert ThreeHammingMapping(101).size == 166650
        assert ThreeHammingMapping(117).size == 260130


class TestOrderingConvention:
    def test_first_flat_index_is_smallest_triple(self):
        mapping = ThreeHammingMapping(8)
        assert mapping.from_flat(0) == (0, 1, 2)

    def test_last_flat_index_is_largest_triple(self):
        mapping = ThreeHammingMapping(8)
        assert mapping.from_flat(mapping.size - 1) == (5, 6, 7)

    def test_plan_boundaries(self):
        # Plan z contains C(n-1-z, 2) elements; the first move of plan z is
        # (z, z+1, z+2).
        n = 9
        mapping = ThreeHammingMapping(n)
        flat = 0
        for z in range(n - 2):
            assert mapping.from_flat(flat) == (z, z + 1, z + 2)
            flat += (n - 1 - z) * (n - 2 - z) // 2


class TestBijection:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 10, 17, 33])
    def test_exhaustive_roundtrip(self, n):
        mapping = ThreeHammingMapping(n)
        assert check_roundtrip(mapping)
        assert check_bijection(mapping)

    @pytest.mark.parametrize("n", [5, 10, 17, 33])
    def test_matches_exact_lexicographic_order(self, n):
        assert check_against_exact(ThreeHammingMapping(n))

    @pytest.mark.parametrize("n", [73, 101, 117])
    def test_paper_instances_random_roundtrip(self, n):
        mapping = ThreeHammingMapping(n)
        rng = np.random.default_rng(12345)
        idx = rng.integers(0, mapping.size, size=3000)
        assert check_roundtrip(mapping, idx)

    def test_figure8_largest_instance_roundtrip(self):
        mapping = ThreeHammingMapping(1517)
        rng = np.random.default_rng(7)
        idx = rng.integers(0, mapping.size, size=1000)
        assert check_roundtrip(mapping, idx)

    @pytest.mark.parametrize("n", [10, 33, 73])
    def test_float_sqrt_variant_matches_exact_variant(self, n):
        exact = ThreeHammingMapping(n)
        gpu_like = ThreeHammingMapping(n, float_sqrt=True)
        idx = np.arange(exact.size)
        assert np.array_equal(exact.from_flat_batch(idx), gpu_like.from_flat_batch(idx))


class TestScalarVectorConsistency:
    @pytest.mark.parametrize("n", [5, 9, 20])
    def test_from_flat_batch_matches_scalar(self, n):
        mapping = ThreeHammingMapping(n)
        idx = np.arange(mapping.size)
        batch = mapping.from_flat_batch(idx)
        scalar = np.array([mapping.from_flat(int(i)) for i in idx])
        assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("n", [5, 9, 20])
    def test_to_flat_batch_matches_scalar(self, n):
        mapping = ThreeHammingMapping(n)
        moves = mapping.all_moves()
        batch = mapping.to_flat_batch(moves)
        scalar = np.array([mapping.to_flat(tuple(m)) for m in moves])
        assert np.array_equal(batch, scalar)

    def test_module_level_functions_agree_with_class(self):
        n = 23
        mapping = ThreeHammingMapping(n)
        for flat in (0, 7, 100, mapping.size - 1):
            z, x, y = flat_to_triple(flat, n)
            assert triple_to_flat(z, x, y, n) == flat
            assert mapping.from_flat(flat) == (z, x, y)


class TestInputValidation:
    def test_out_of_range_flat_index(self):
        mapping = ThreeHammingMapping(10)
        with pytest.raises(IndexError):
            mapping.from_flat(mapping.size)

    def test_out_of_range_move(self):
        mapping = ThreeHammingMapping(10)
        with pytest.raises(ValueError):
            mapping.to_flat((3, 5, 10))

    def test_duplicate_indices_rejected(self):
        mapping = ThreeHammingMapping(10)
        with pytest.raises(ValueError):
            mapping.to_flat((1, 1, 2))

    def test_too_small_n_rejected(self):
        with pytest.raises(ValueError):
            ThreeHammingMapping(2)

    def test_non_increasing_batch_rejected(self):
        mapping = ThreeHammingMapping(10)
        with pytest.raises(ValueError):
            mapping.to_flat_batch(np.array([[5, 2, 8]]))


class TestPropertyBased:
    @settings(max_examples=200, deadline=None)
    @given(n=st.integers(min_value=3, max_value=200), data=st.data())
    def test_roundtrip_random_indices(self, n, data):
        mapping = ThreeHammingMapping(n)
        index = data.draw(st.integers(min_value=0, max_value=mapping.size - 1))
        move = mapping.from_flat(index)
        assert len(move) == 3
        assert 0 <= move[0] < move[1] < move[2] < n
        assert mapping.to_flat(move) == index

    @settings(max_examples=200, deadline=None)
    @given(n=st.integers(min_value=3, max_value=200), data=st.data())
    def test_roundtrip_random_moves(self, n, data):
        mapping = ThreeHammingMapping(n)
        z = data.draw(st.integers(min_value=0, max_value=n - 3))
        x = data.draw(st.integers(min_value=z + 1, max_value=n - 2))
        y = data.draw(st.integers(min_value=x + 1, max_value=n - 1))
        flat = mapping.to_flat((z, x, y))
        assert 0 <= flat < mapping.size
        assert mapping.from_flat(flat) == (z, x, y)
