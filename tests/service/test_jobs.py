"""Job specs, Poisson traces and the JSON trace round-trip."""

import numpy as np
import pytest

from repro.service import JobSpec, load_trace, poisson_trace, save_trace


class TestJobSpec:
    def test_resolved_seeds_derive_from_base_seed(self):
        spec = JobSpec(job_id="j", arrival=0.0, replicas=3, budget=10, seed=100)
        assert spec.resolved_seeds() == (100, 101, 102)

    def test_explicit_seeds_override_derivation(self):
        spec = JobSpec(
            job_id="j", arrival=0.0, replicas=2, budget=10, seeds=(7, 9)
        )
        assert spec.resolved_seeds() == (7, 9)

    def test_seed_count_must_match_replicas(self):
        with pytest.raises(ValueError, match="seeds"):
            JobSpec(job_id="j", arrival=0.0, replicas=3, budget=10, seeds=(1, 2))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replicas": 0},
            {"budget": -1},
            {"arrival": -0.5},
            {"deadline": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(job_id="j", arrival=0.0, replicas=1, budget=1)
        base.update(kwargs)
        with pytest.raises(ValueError):
            JobSpec(**base)

    def test_dict_round_trip(self):
        spec = JobSpec(
            job_id="j-1",
            arrival=1.5,
            replicas=4,
            budget=30,
            seed=5,
            deadline=2.0,
            priority=2,
            tenant="acme",
            target_fitness=1.0,
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestPoissonTrace:
    def test_deterministic_for_a_seed(self):
        first = poisson_trace(10, 4.0, rng=3)
        second = poisson_trace(10, 4.0, rng=3)
        assert first == second

    def test_arrivals_increase_and_fields_in_range(self):
        jobs = poisson_trace(
            25,
            2.0,
            rng=1,
            replicas=(2, 5),
            budget=(10, 20),
            deadline=(1.0, 3.0),
            priorities=(0, 1, 5),
            tenants=3,
        )
        arrivals = [job.arrival for job in jobs]
        assert arrivals == sorted(arrivals)
        assert all(2 <= job.replicas <= 5 for job in jobs)
        assert all(10 <= job.budget <= 20 for job in jobs)
        assert all(1.0 <= job.deadline <= 3.0 for job in jobs)
        assert {job.priority for job in jobs} <= {0, 1, 5}
        assert {job.tenant for job in jobs} <= {"tenant-0", "tenant-1", "tenant-2"}
        assert len({job.job_id for job in jobs}) == len(jobs)

    def test_mean_interarrival_tracks_rate(self):
        jobs = poisson_trace(4000, 8.0, rng=0)
        gaps = np.diff([0.0] + [job.arrival for job in jobs])
        assert np.mean(gaps) == pytest.approx(1 / 8.0, rel=0.1)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="num_jobs"):
            poisson_trace(0, 1.0)
        with pytest.raises(ValueError, match="rate"):
            poisson_trace(5, 0.0)


class TestTraceRoundTrip:
    def test_save_load(self, tmp_path):
        jobs = poisson_trace(8, 3.0, rng=2, deadline=2.5, tenants=2)
        path = tmp_path / "trace.json"
        save_trace(path, jobs, problem={"m": 25, "n": 25, "k": 1, "seed": 0})
        meta, loaded = load_trace(path)
        assert meta == {"m": 25, "n": 25, "k": 1, "seed": 0}
        assert loaded == jobs

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text('{"version": 999, "jobs": []}')
        with pytest.raises(ValueError, match="version"):
            load_trace(path)
