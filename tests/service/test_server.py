"""Solve-server scheduling: admission, fairness, preemption, accounting."""

import math

import numpy as np
import pytest

from repro.core import CPUEvaluator
from repro.localsearch.multistart import MultiStartRunner
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import PermutedPerceptronProblem
from repro.service import (
    JobSpec,
    SolveServer,
    calibrate_step_time,
    saturating_rate,
)


@pytest.fixture(scope="module")
def instance():
    problem = PermutedPerceptronProblem.generate(21, 21, rng=7)
    return problem, KHammingNeighborhood(problem.n, 1)


@pytest.fixture
def evaluator(instance):
    problem, neighborhood = instance
    evaluator = CPUEvaluator(problem, neighborhood)
    yield evaluator
    evaluator.close()


def job(job_id, arrival=0.0, replicas=1, budget=10, **kwargs):
    return JobSpec(
        job_id=job_id, arrival=arrival, replicas=replicas, budget=budget, **kwargs
    )


class TestLifecycleAndAccounting:
    def test_trace_completes_with_full_accounting(self, evaluator):
        jobs = [
            job("a", replicas=2, budget=8),
            job("b", arrival=0.0, replicas=1, budget=4),
        ]
        server = SolveServer(evaluator, capacity=4)
        report = server.run_trace(jobs)
        assert [record.spec.job_id for record in report.records] == ["a", "b"]
        assert report.completed == 2
        assert report.steps > 0
        assert report.busy_time > 0.0
        assert 0.0 < report.mean_occupancy <= 1.0
        assert report.goodput > 0.0
        assert report.gpu_seconds == pytest.approx(report.busy_time)
        for record in report.records:
            assert record.status == "completed"
            assert len(record.results) == record.spec.replicas
            assert record.queue_wait == 0.0
            assert record.latency == record.service_time
            assert record.gpu_seconds > 0.0
            assert 0 <= record.iterations <= record.spec.replicas * record.spec.budget
            assert record.best_fitness == min(
                result.best_fitness for result in record.results
            )

    def test_results_match_standalone_runner(self, instance, evaluator):
        spec = job("solo", replicas=2, budget=12, seed=5)
        report = SolveServer(evaluator, capacity=4).run_trace([spec])
        problem, neighborhood = instance
        solo_evaluator = CPUEvaluator(problem, neighborhood)
        try:
            solo = MultiStartRunner(solo_evaluator, max_iterations=12).run(
                seeds=spec.resolved_seeds()
            )
        finally:
            solo_evaluator.close()
        record = report.records[0]
        for actual, expected in zip(record.results, solo):
            assert actual.best_fitness == expected.best_fitness
            assert actual.iterations == expected.iterations
            assert np.array_equal(actual.best_solution, expected.best_solution)

    def test_target_reached_job_completes_immediately(self, evaluator):
        spec = job("easy", budget=50, target_fitness=float("inf"))
        report = SolveServer(evaluator, capacity=2).run_trace([spec])
        record = report.records[0]
        assert record.status == "completed"
        assert record.iterations == 0
        assert record.results[0].stopping_reason == "target_reached"

    def test_empty_trace(self, evaluator):
        report = SolveServer(evaluator, capacity=2).run_trace([])
        assert report.records == []
        assert report.makespan == 0.0
        assert report.goodput == 0.0
        assert math.isnan(report.p50_latency)

    def test_duplicate_job_ids_rejected(self, evaluator):
        server = SolveServer(evaluator, capacity=2)
        with pytest.raises(ValueError, match="duplicate"):
            server.run_trace([job("same"), job("same")])

    def test_summary_row_shape(self, evaluator):
        report = SolveServer(evaluator, capacity=2).run_trace([job("a", budget=3)])
        row = report.summary_row(label="pt", load=1.5)
        assert row["label"] == "pt"
        assert row["load"] == 1.5
        assert row["jobs"] == 1
        assert row["completed"] == 1
        assert row["goodput"] == report.goodput


class TestAdmissionControl:
    def test_oversized_job_rejected(self, evaluator):
        report = SolveServer(evaluator, capacity=2).run_trace(
            [job("big", replicas=5), job("ok", replicas=1, budget=3)]
        )
        by_id = {record.spec.job_id: record for record in report.records}
        assert by_id["big"].status == "rejected"
        assert by_id["big"].results == []
        assert by_id["ok"].status == "completed"
        assert report.rejected == 1

    def test_queue_overflow_rejected(self, evaluator):
        jobs = [job(f"j{i}", replicas=2, budget=10) for i in range(4)]
        report = SolveServer(evaluator, capacity=2, max_queue=2).run_trace(jobs)
        assert report.rejected == 2
        assert report.completed == 2

    def test_queued_job_expires_past_deadline(self, evaluator):
        jobs = [
            job("hog", replicas=2, budget=60),
            job("rushed", arrival=1e-6, replicas=2, budget=5, deadline=1e-6),
        ]
        report = SolveServer(evaluator, capacity=2).run_trace(jobs)
        by_id = {record.spec.job_id: record for record in report.records}
        assert by_id["rushed"].status == "expired"
        assert by_id["rushed"].admitted is None
        assert not by_id["rushed"].deadline_met
        assert by_id["hog"].status == "completed"
        assert report.expired == 1
        # Goodput counts only deadline-met completions.
        assert report.goodput == pytest.approx(1 / report.makespan)

    def test_small_job_backfills_around_blocked_head(self, evaluator):
        jobs = [
            job("a", replicas=2, budget=40),
            job("b", replicas=2, budget=5),
            job("c", replicas=1, budget=5),
        ]
        report = SolveServer(evaluator, capacity=3, preemption=False).run_trace(jobs)
        by_id = {record.spec.job_id: record for record in report.records}
        assert by_id["c"].queue_wait == 0.0
        assert by_id["b"].queue_wait > 0.0
        assert report.completed == 3


class TestPriorityAndFairness:
    def test_high_priority_preempts_and_victim_resumes(self, instance, evaluator):
        jobs = [
            job("low", replicas=2, budget=40, seed=3),
            job("high", arrival=1e-6, replicas=2, budget=10, priority=5),
        ]
        report = SolveServer(evaluator, capacity=2).run_trace(jobs)
        by_id = {record.spec.job_id: record for record in report.records}
        low, high = by_id["low"], by_id["high"]
        assert low.preemptions == 1
        assert low.status == "completed"
        assert high.status == "completed"
        assert high.finished < low.finished
        assert report.preempted_jobs == 1
        # The preempted job's trajectory is still bit-identical to standalone.
        problem, neighborhood = instance
        solo_evaluator = CPUEvaluator(problem, neighborhood)
        try:
            solo = MultiStartRunner(solo_evaluator, max_iterations=40).run(
                seeds=by_id["low"].spec.resolved_seeds()
            )
        finally:
            solo_evaluator.close()
        for actual, expected in zip(low.results, solo):
            assert actual.best_fitness == expected.best_fitness
            assert actual.iterations == expected.iterations
            assert np.array_equal(actual.best_solution, expected.best_solution)

    def test_preemption_can_be_disabled(self, evaluator):
        jobs = [
            job("low", replicas=2, budget=40),
            job("high", arrival=1e-6, replicas=2, budget=10, priority=5),
        ]
        report = SolveServer(evaluator, capacity=2, preemption=False).run_trace(jobs)
        by_id = {record.spec.job_id: record for record in report.records}
        assert by_id["low"].preemptions == 0
        assert by_id["high"].finished > by_id["low"].finished

    def test_equal_priority_never_preempts(self, evaluator):
        jobs = [
            job("first", replicas=2, budget=40),
            job("second", arrival=1e-6, replicas=2, budget=10),
        ]
        report = SolveServer(evaluator, capacity=2).run_trace(jobs)
        assert report.preempted_jobs == 0

    def test_fair_share_lets_waiting_tenant_in(self, evaluator):
        jobs = [
            job("x1", replicas=2, budget=30, tenant="x"),
            job("x2", replicas=2, budget=30, tenant="x"),
            job("y1", replicas=2, budget=5, tenant="y"),
        ]
        fair = SolveServer(evaluator, capacity=4, fair_share=0.5).run_trace(jobs)
        by_id = {record.spec.job_id: record for record in fair.records}
        assert by_id["y1"].queue_wait == 0.0
        assert by_id["x2"].queue_wait > 0.0

        greedy = SolveServer(evaluator, capacity=4).run_trace(jobs)
        by_id = {record.spec.job_id: record for record in greedy.records}
        assert by_id["x2"].queue_wait == 0.0
        assert by_id["y1"].queue_wait > 0.0


class TestDrainBaseline:
    def test_drain_admits_only_into_an_empty_batch(self, evaluator):
        jobs = [
            job("long", replicas=1, budget=30),
            job("short", arrival=1e-6, replicas=1, budget=5),
        ]
        report = SolveServer(evaluator, capacity=2, policy="drain").run_trace(jobs)
        by_id = {record.spec.job_id: record for record in report.records}
        assert report.policy == "drain"
        # "short" had a free slot the whole time but still waited for the drain.
        assert by_id["short"].admitted >= by_id["long"].finished

    def test_continuous_beats_drain_on_packing(self, instance):
        problem, neighborhood = instance
        jobs = [job("head", replicas=2, budget=30)] + [
            job(f"tail{i}", replicas=1, budget=5) for i in range(4)
        ]
        reports = {}
        for policy in ("continuous", "drain"):
            evaluator = CPUEvaluator(problem, neighborhood)
            try:
                server = SolveServer(evaluator, capacity=4, policy=policy)
                reports[policy] = server.run_trace(jobs)
            finally:
                evaluator.close()
        assert reports["continuous"].completed == reports["drain"].completed == 5
        assert reports["continuous"].makespan < reports["drain"].makespan
        assert (
            reports["continuous"].mean_occupancy > reports["drain"].mean_occupancy
        )


class TestConfiguration:
    def test_validation(self, evaluator):
        with pytest.raises(ValueError, match="policy"):
            SolveServer(evaluator, capacity=2, policy="eager")
        with pytest.raises(ValueError, match="capacity"):
            SolveServer(evaluator, capacity=0)
        with pytest.raises(ValueError, match="max_queue"):
            SolveServer(evaluator, capacity=2, max_queue=0)
        with pytest.raises(ValueError, match="fair_share"):
            SolveServer(evaluator, capacity=2, fair_share=1.5)

    def test_env_defaults(self, evaluator, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_CAPACITY", "8")
        monkeypatch.setenv("REPRO_SERVICE_MAX_QUEUE", "9")
        server = SolveServer(evaluator)
        assert server.capacity == 8
        assert server.max_queue == 9
        monkeypatch.setenv("REPRO_SERVICE_CAPACITY", "not-a-number")
        assert SolveServer(evaluator).capacity == 32


class TestCalibration:
    def test_calibrated_rate_round_trip(self, evaluator):
        step_time = calibrate_step_time(evaluator, capacity=4, steps=3)
        assert step_time > 0.0
        rate = saturating_rate(step_time, 4, 100.0, load=2.0)
        assert rate == pytest.approx(2.0 * 4 / (step_time * 100.0))

    def test_saturating_rate_validation(self):
        with pytest.raises(ValueError):
            saturating_rate(0.0, 4, 100.0)
        with pytest.raises(ValueError):
            saturating_rate(0.1, 0, 100.0)
        with pytest.raises(ValueError):
            saturating_rate(0.1, 4, 0.0)
