"""Dynamic lockstep core: mid-flight churn never changes any trajectory.

The detached-replica correctness suite: a tenant that joins, runs and
leaves the live batch mid-flight must produce a trajectory bit-identical to
the same seeds/budget run standalone, across all four transfer modes and
with host workers on; and co-resident tenants must never be perturbed by
other tenants joining or leaving.
"""

import numpy as np
import pytest

from repro.core import CPUEvaluator, GPUEvaluator, MultiGPUEvaluator
from repro.localsearch.multistart import MultiStartRunner
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import PermutedPerceptronProblem
from repro.service import CapacityError, ContinuousRunner


@pytest.fixture(scope="module")
def instance():
    problem = PermutedPerceptronProblem.generate(21, 21, rng=7)
    return problem, KHammingNeighborhood(problem.n, 1)


EVALUATORS = {
    "cpu": lambda p, n: CPUEvaluator(p, n),
    "gpu": lambda p, n: GPUEvaluator(p, n),
    "multi-gpu": lambda p, n: MultiGPUEvaluator(p, n, devices=2),
}


def make_runner(instance, evaluator_key, mode, **kwargs):
    problem, neighborhood = instance
    evaluator = EVALUATORS[evaluator_key](problem, neighborhood)
    runner = ContinuousRunner(
        evaluator, transfer_mode=mode, track_history=True, **kwargs
    )
    return evaluator, runner


def standalone(instance, evaluator_key, mode, seeds, budget):
    problem, neighborhood = instance
    evaluator = EVALUATORS[evaluator_key](problem, neighborhood)
    try:
        return MultiStartRunner(
            evaluator,
            max_iterations=budget,
            track_history=True,
            transfer_mode=mode,
        ).run(seeds=seeds)
    finally:
        evaluator.close()


def drain(runner):
    """Step until every slot retired; returns retired slots in order."""
    retired = []
    while runner.num_active:
        retired.extend(runner.step().retired)
    return retired


def assert_result_equal(actual, expected, label=""):
    assert actual.best_fitness == expected.best_fitness, label
    assert actual.iterations == expected.iterations, label
    assert actual.evaluations == expected.evaluations, label
    assert actual.stopping_reason == expected.stopping_reason, label
    assert actual.initial_fitness == expected.initial_fitness, label
    assert actual.history == expected.history, label
    assert np.array_equal(actual.best_solution, expected.best_solution), label


@pytest.mark.parametrize(
    "evaluator_key,mode",
    [
        ("cpu", "full"),
        ("gpu", "full"),
        ("gpu", "delta"),
        ("gpu", "reduced"),
        ("gpu", "persistent"),
        ("multi-gpu", "reduced"),
    ],
)
class TestMidFlightIdentity:
    def test_late_joiner_matches_standalone(self, instance, evaluator_key, mode):
        """A tenant attached into a busy batch follows its standalone path."""
        evaluator, runner = make_runner(instance, evaluator_key, mode, capacity=6)
        with runner:
            first = runner.attach(seeds=[1, 2], budgets=40)
            for _ in range(7):
                runner.step()
            late = runner.attach(seeds=[9], budgets=25)
            drain(runner)
            late_results = runner.detach(late)
            first_results = runner.detach(first)
        evaluator.close()

        solo_late = standalone(instance, evaluator_key, mode, [9], 25)
        assert_result_equal(late_results[0], solo_late[0], f"{mode} late joiner")
        solo_first = standalone(instance, evaluator_key, mode, [1, 2], 40)
        for actual, expected in zip(first_results, solo_first):
            assert_result_equal(actual, expected, f"{mode} first group")

    def test_coresident_tenants_never_perturbed(self, instance, evaluator_key, mode):
        """Tenant A's trajectory is the same with and without B's churn."""
        evaluator, runner = make_runner(instance, evaluator_key, mode, capacity=5)
        with runner:
            alone = runner.attach(seeds=[3, 4], budgets=30)
            drain(runner)
            alone_results = runner.detach(alone)
        evaluator.close()

        evaluator, runner = make_runner(instance, evaluator_key, mode, capacity=5)
        with runner:
            group_a = runner.attach(seeds=[3, 4], budgets=30)
            for _ in range(4):
                runner.step()
            # B joins, finishes early and leaves while A is still running.
            group_b = runner.attach(seeds=[77], budgets=6)
            retired = drain(runner)
            assert retired.index(group_b[0]) < len(retired) - 1
            churned_results = runner.detach(group_a)
            runner.detach(group_b)
        evaluator.close()

        for with_churn, without in zip(churned_results, alone_results):
            assert_result_equal(with_churn, without, f"{mode} co-resident")


def test_identity_with_host_workers(instance, monkeypatch):
    """Sharded host evaluation keeps the mid-flight identity bit-exact."""
    monkeypatch.setenv("REPRO_HOST_WORKERS", "2")
    monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
    evaluator, runner = make_runner(
        instance, "gpu", "reduced", capacity=5, host_workers=2
    )
    with runner:
        runner.attach(seeds=[1, 2], budgets=30)
        for _ in range(5):
            runner.step()
        late = runner.attach(seeds=[9], budgets=20)
        drain(runner)
        late_results = runner.detach(late)
    evaluator.close()
    monkeypatch.delenv("REPRO_HOST_WORKERS")
    monkeypatch.delenv("REPRO_HOST_MIN_WORK")
    solo = standalone(instance, "gpu", "reduced", [9], 20)
    assert_result_equal(late_results[0], solo[0], "host workers")


@pytest.mark.parametrize(
    "evaluator_key,mode",
    [("gpu", "delta"), ("gpu", "persistent"), ("multi-gpu", "reduced")],
)
def test_suspend_resume_is_bit_identical(instance, evaluator_key, mode):
    """A preempted tenant resumes exactly where it left off."""
    evaluator, runner = make_runner(instance, evaluator_key, mode, capacity=4)
    with runner:
        slots = runner.attach(seeds=[5, 6], budgets=35)
        for _ in range(6):
            runner.step()
        saved = runner.suspend(slots)
        assert runner.num_leased == 0
        # Another tenant churns through the same physical slots meanwhile.
        other = runner.attach(seeds=[50, 51, 52], budgets=8)
        drain(runner)
        runner.detach(other)
        runner.resume(saved)
        drain(runner)
        resumed = runner.detach(np.nonzero(runner.leased)[0])
    evaluator.close()

    solo = standalone(instance, evaluator_key, mode, [5, 6], 35)
    for actual, expected in zip(resumed, solo):
        assert_result_equal(actual, expected, f"{mode} suspend/resume")


def test_rebalance_keeps_identity(instance):
    """Periodic replica migration in the live batch is timing-only."""
    evaluator, runner = make_runner(
        instance, "multi-gpu", "reduced", capacity=6, rebalance_every=3
    )
    with runner:
        slots = runner.attach(seeds=[11, 12, 13, 14], budgets=25)
        for _ in range(5):
            runner.step()
        late = runner.attach(seeds=[15], budgets=15)
        drain(runner)
        late_results = runner.detach(late)
        first_results = runner.detach(slots)
    evaluator.close()
    solo = standalone(instance, "multi-gpu", "reduced", [11, 12, 13, 14], 25)
    for actual, expected in zip(first_results, solo):
        assert_result_equal(actual, expected, "rebalanced group")
    solo_late = standalone(instance, "multi-gpu", "reduced", [15], 15)
    assert_result_equal(late_results[0], solo_late[0], "rebalanced late joiner")


class TestSlotMechanics:
    def test_capacity_error_when_group_does_not_fit(self, instance):
        evaluator, runner = make_runner(instance, "cpu", "full", capacity=3)
        with runner:
            runner.attach(seeds=[1, 2], budgets=5)
            with pytest.raises(CapacityError, match="2 slots"):
                runner.attach(seeds=[3, 4], budgets=5)
            assert runner.free_slots == 1
        evaluator.close()

    def test_slots_are_recycled_after_detach(self, instance):
        evaluator, runner = make_runner(instance, "gpu", "reduced", capacity=2)
        with runner:
            for round_seed in (10, 20, 30):
                slots = runner.attach(seeds=[round_seed, round_seed + 1], budgets=4)
                drain(runner)
                results = runner.detach(slots)
                assert all(r.stopping_reason == "max_iterations" for r in results)
                assert runner.free_slots == 2
        evaluator.close()

    def test_detach_errors(self, instance):
        evaluator, runner = make_runner(instance, "cpu", "full", capacity=2)
        with runner:
            slots = runner.attach(seeds=[1], budgets=50)
            with pytest.raises(RuntimeError, match="still searching"):
                runner.detach(slots)
            with pytest.raises(ValueError, match="not leased"):
                runner.detach([1])
            cancelled = runner.detach(slots, cancel=True)
            assert cancelled[0].stopping_reason == "cancelled"
        evaluator.close()

    def test_zero_budget_job_retires_immediately(self, instance):
        evaluator, runner = make_runner(instance, "cpu", "full", capacity=2)
        with runner:
            slots = runner.attach(seeds=[1], budgets=0)
            report = runner.step()
            assert report.retired == slots.tolist()
            assert not report.evaluated
            result = runner.detach(slots)[0]
            assert result.iterations == 0
            assert result.stopping_reason == "max_iterations"
        evaluator.close()

    def test_target_reached_takes_precedence(self, instance):
        problem, _ = instance
        evaluator, runner = make_runner(instance, "cpu", "full", capacity=2)
        with runner:
            # An unreachable target keeps the budget cap in charge; a trivial
            # target (any fitness) retires at the next boundary as
            # "target_reached" even when the budget is also exhausted.
            slots = runner.attach(seeds=[1], budgets=2, targets=float("inf"))
            drain(runner)
            assert runner.detach(slots)[0].stopping_reason == "target_reached"
        evaluator.close()

    def test_local_optimum_reported(self, instance):
        evaluator, runner = make_runner(
            instance, "cpu", "full", capacity=2, algorithm="hill-climbing"
        )
        with runner:
            slots = runner.attach(seeds=[1, 2], budgets=10_000)
            drain(runner)
            results = runner.detach(slots)
            assert {r.stopping_reason for r in results} == {"local_optimum"}
        evaluator.close()

    def test_open_close_guards(self, instance):
        evaluator, runner = make_runner(instance, "cpu", "full", capacity=2)
        with pytest.raises(RuntimeError, match="not open"):
            runner.step()
        runner.open()
        with pytest.raises(RuntimeError, match="already open"):
            runner.open()
        runner.close()
        runner.close()  # idempotent
        with pytest.raises(RuntimeError, match="not open"):
            runner.attach(seeds=[1], budgets=1)
        evaluator.close()

    def test_capacity_must_be_positive(self, instance):
        problem, neighborhood = instance
        evaluator = CPUEvaluator(problem, neighborhood)
        with pytest.raises(ValueError, match="capacity"):
            ContinuousRunner(evaluator, capacity=0)
        evaluator.close()

    def test_suspend_requires_live_slots(self, instance):
        evaluator, runner = make_runner(instance, "cpu", "full", capacity=2)
        with runner:
            slots = runner.attach(seeds=[1], budgets=0)
            runner.step()
            with pytest.raises(ValueError, match="not actively searching"):
                runner.suspend(slots)
            runner.detach(slots)
        evaluator.close()

    def test_occupancy_accounting(self, instance):
        evaluator, runner = make_runner(instance, "gpu", "delta", capacity=4)
        with runner:
            runner.attach(seeds=[1, 2], budgets=5)
            report = runner.step()
            assert report.occupancy == pytest.approx(0.5)
            assert runner.mean_occupancy == pytest.approx(0.5)
            assert runner.busy_time > 0.0
        evaluator.close()
