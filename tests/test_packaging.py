"""Packaging-level smoke tests: public API surface, module entry point, metadata."""

import subprocess
import sys

import pytest

import repro


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        ["mappings", "neighborhoods", "problems", "gpu", "core", "localsearch", "harness"],
    )
    def test_subpackage_all_exports_resolve(self, module):
        import importlib

        mod = importlib.import_module(f"repro.{module}")
        for name in mod.__all__:
            assert hasattr(mod, name), f"repro.{module}.{name}"

    def test_one_liner_workflow(self):
        # The README's quickstart, condensed: the library must be usable in a
        # handful of lines end to end.
        from repro import CPUEvaluator, KHammingNeighborhood, PermutedPerceptronProblem, TabuSearch

        problem = PermutedPerceptronProblem.generate(15, 15, rng=0)
        result = TabuSearch(
            CPUEvaluator(problem, KHammingNeighborhood(15, 2)), max_iterations=50
        ).run(rng=0)
        assert result.iterations <= 50


class TestModuleEntryPoint:
    def test_python_dash_m_repro_devices(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "devices"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "GTX 280" in completed.stdout

    def test_python_dash_m_repro_help(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        for command in ("tables", "figure8", "solve", "devices", "mapping"):
            assert command in completed.stdout
