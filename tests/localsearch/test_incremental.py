"""Incremental gain-cache engine under the search loops: bit-identity matrix.

The engine replaces the per-iteration full ``(S, M)`` recompute with
O(affected) maintenance, but it is pure plumbing: for every problem family,
every transfer mode and every lockstep algorithm the trajectories, byte
counters and launch counts must match the ``REPRO_INCREMENTAL=0`` recompute
exactly — including across every invalidation path (restarts, ILS kicks,
device faults, replica migration on rebalance, checkpoint -> restore and
host-worker sharding).
"""

import numpy as np
import pytest

import repro.localsearch.multistart as multistart_mod
from repro.core import CPUEvaluator, GPUEvaluator
from repro.core.evaluators import MultiGPUEvaluator
from repro.localsearch import IteratedLocalSearch, MultiStartRunner, TabuSearch
from repro.localsearch.multistart import MultiStartRunner as Runner
from repro.neighborhoods import KHammingNeighborhood
from repro.parallel import host_parallel, shutdown_host_pool
from repro.problems import MaxSat, NKLandscape, OneMax, UBQP, generate_random_ksat
from repro.problems.incremental import GainEngine
from repro.problems.instances import make_table_instance

MODES = ("full", "delta", "reduced", "persistent")
ALGORITHMS = ("tabu", "hill-climbing", "first-improvement")
SEEDS = [21, 22, 23, 24]

PROBLEM_FACTORIES = {
    "ppp": lambda: make_table_instance((16, 16), trial=0),
    "onemax": lambda: OneMax(16),
    "maxsat": lambda: MaxSat(16, *generate_random_ksat(16, 60, k=3, rng=2)),
    "nk": lambda: NKLandscape(16, 3, rng=4),
    "ubqp": lambda: UBQP.random(16, rng=1),
}


@pytest.fixture(autouse=True)
def _pool_teardown():
    yield
    shutdown_host_pool()


def lockstep_signature(problem, mode, algorithm, *, host_workers=None, order=2):
    neighborhood = KHammingNeighborhood(problem.n, order)
    with GPUEvaluator(problem, neighborhood) as evaluator:
        runner = MultiStartRunner(
            evaluator,
            algorithm=algorithm,
            max_iterations=12,
            transfer_mode=mode,
            target_fitness=float("-inf"),
            host_workers=host_workers,
        )
        result = runner.run(seeds=SEEDS)
        return {
            "best": [r.best_fitness for r in result],
            "iterations": [r.iterations for r in result],
            "reasons": [r.stopping_reason for r in result],
            "solutions": [r.best_solution.tobytes() for r in result],
            "evaluations": evaluator.stats.evaluations,
            "simulated_time": evaluator.stats.simulated_time,
        }


class TestLockstepMatrix:
    """5 problems x 4 transfer modes x 3 algorithms, engine on vs off."""

    @pytest.mark.parametrize("name", sorted(PROBLEM_FACTORIES))
    @pytest.mark.parametrize("mode", MODES)
    def test_engine_matches_recompute(self, name, mode, monkeypatch):
        problem = PROBLEM_FACTORIES[name]()
        for algorithm in ALGORITHMS:
            monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
            with_engine = lockstep_signature(problem, mode, algorithm)
            monkeypatch.setenv("REPRO_INCREMENTAL", "0")
            without = lockstep_signature(problem, mode, algorithm)
            assert with_engine == without, f"{name}/{mode}/{algorithm} diverged"

    @pytest.mark.parametrize("name", sorted(PROBLEM_FACTORIES))
    def test_engine_actually_serves_the_hot_loop(self, name, monkeypatch):
        """Guard against the matrix passing because the engine silently
        declines everything: on 2-Hamming lockstep it must serve."""
        engines = []
        real_create = multistart_mod.create_gain_engine

        def probe(problem, rows_hint=0):
            engine = real_create(problem, rows_hint=rows_hint)
            if engine is not None:
                engines.append(engine)
            return engine

        monkeypatch.setattr(multistart_mod, "create_gain_engine", probe)
        lockstep_signature(PROBLEM_FACTORIES[name](), "delta", "tabu")
        assert engines, "no engine was created for the lockstep run"
        stats = engines[-1].stats
        assert stats["evals"] > 0, f"engine never served ({stats})"
        assert stats["commits"] > 0


class TestScalarSearches:
    """The S=1 loops (scalar tabu, ILS descents) drive the same engine."""

    @pytest.mark.parametrize("mode", MODES[1:])  # resident modes
    def test_scalar_tabu_matches_recompute(self, mode, monkeypatch):
        problem = PROBLEM_FACTORIES["maxsat"]()
        neighborhood = KHammingNeighborhood(problem.n, 2)

        def run():
            with GPUEvaluator(problem, neighborhood) as evaluator:
                result = TabuSearch(
                    evaluator, max_iterations=15, transfer_mode=mode, track_history=True
                ).run(rng=np.random.default_rng(31))
                return (
                    result.best_fitness,
                    result.iterations,
                    tuple(result.history),
                    result.best_solution.tobytes(),
                    evaluator.stats.simulated_time,
                )

        monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
        with_engine = run()
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        assert with_engine == run()

    def test_ils_kicks_rederive_not_diverge(self, monkeypatch):
        """The kick between descents mutates the solution outside the commit
        stream; the shared engine must re-derive, bit-identically."""
        problem = PROBLEM_FACTORIES["ubqp"]()
        neighborhood = KHammingNeighborhood(problem.n, 2)

        def run():
            search = IteratedLocalSearch(
                CPUEvaluator(problem, neighborhood),
                restarts=5,
                descent_max_iterations=10,
                target_fitness=float("-inf"),
            )
            result = search.run(rng=np.random.default_rng(17))
            return (result.best_fitness, result.iterations, result.best_solution.tobytes())

        monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
        with_engine = run()
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        assert with_engine == run()


def multi_gpu_signature(mode, *, fault_plan=None, resume=None, checkpoints=None):
    problem = UBQP.random(16, rng=3)
    neighborhood = KHammingNeighborhood(problem.n, 2)
    evaluator = MultiGPUEvaluator(problem, neighborhood, devices=3)
    runner = Runner(
        evaluator,
        max_iterations=30,
        transfer_mode=mode,
        rebalance_every=7,
        target_fitness=float("-inf"),
    )
    kwargs = {}
    if fault_plan is not None:
        kwargs["fault_plan"] = fault_plan
    if resume is not None:
        result = runner.run(resume=resume)
    else:
        if checkpoints is not None:
            kwargs["checkpoint_every"] = 10
            kwargs["checkpoint_callback"] = checkpoints.append
        result = runner.run(seeds=[11, 12, 13, 14, 15, 16], **kwargs)
    contexts = list(runner.evaluator.pool.contexts)
    return {
        "best": [r.best_fitness for r in result],
        "iterations": [r.iterations for r in result],
        "simulated_time": result.simulated_time,
        "h2d": sum(ctx.stats.h2d_bytes for ctx in contexts),
        "d2h": sum(ctx.stats.d2h_bytes for ctx in contexts),
        "launches": sum(ctx.stats.kernel_launches for ctx in contexts),
        "makespan": max(ctx.timeline.elapsed for ctx in contexts),
    }


class TestInvalidationPaths:
    @pytest.mark.parametrize("mode", ("delta", "reduced"))
    def test_device_fault_and_migration(self, mode, monkeypatch):
        """A mid-run device death migrates replicas (and the rebalances move
        them again): the engine is invalidated, not consulted stale."""
        monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
        with_engine = multi_gpu_signature(mode, fault_plan="fail:1@6")
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        assert with_engine == multi_gpu_signature(mode, fault_plan="fail:1@6")

    def test_checkpoint_restore_rederives(self, monkeypatch):
        """Gain state is derived data: a restored run (fresh engine, no
        persisted state) must match the uninterrupted engine-off run."""
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        uninterrupted = multi_gpu_signature("delta")

        monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
        checkpoints = []
        multi_gpu_signature("delta", checkpoints=checkpoints)
        assert checkpoints
        restored = multi_gpu_signature("delta", resume=checkpoints[0])
        assert restored["best"] == uninterrupted["best"]
        assert restored["iterations"] == uninterrupted["iterations"]

    def test_host_pool_sharding_matches_recompute(self, monkeypatch):
        """Worker-side shard engines reproduce the single-process result."""
        monkeypatch.setenv("REPRO_HOST_WORKERS", "2")
        monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
        problem = PROBLEM_FACTORIES["maxsat"]()
        monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
        sharded = lockstep_signature(problem, "delta", "tabu", host_workers=2)
        shutdown_host_pool()
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        recompute = lockstep_signature(problem, "delta", "tabu", host_workers=2)
        shutdown_host_pool()
        monkeypatch.delenv("REPRO_HOST_WORKERS", raising=False)
        local = lockstep_signature(problem, "delta", "tabu")
        assert sharded == recompute == local


class TestPoolUpdateTraffic:
    """REPRO_HOST_MIN_WORK regression: tiny incremental update payloads must
    not buy IPC round trips of their own (ops ride the eval broadcast)."""

    def test_declined_evals_send_no_update_ipc(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOST_WORKERS", "2")
        # Threshold high enough that every batch is declined by the pool.
        monkeypatch.setenv("REPRO_HOST_MIN_WORK", str(10**12))
        problem = PROBLEM_FACTORIES["ubqp"]()
        moves = KHammingNeighborhood(problem.n, 2).moves()
        moves.setflags(write=False)
        rng = np.random.default_rng(41)
        solutions = np.stack([problem.random_solution(rng) for _ in range(4)])
        engine = GainEngine(problem, rows_hint=4)
        rows = np.arange(4, dtype=np.int64)
        with host_parallel(problem, max_rows=4, max_moves=moves.shape[0]) as pool:
            problem._gain_engine = engine
            try:
                for _ in range(5):
                    engine.expect(rows)
                    problem.evaluate_neighborhood_batch(solutions, moves)
                    bits = np.stack(
                        [rng.choice(problem.n, size=2, replace=False) for _ in range(4)]
                    ).astype(np.int64)
                    engine.commit(rows, bits)
                    solutions[rows[:, None], bits] ^= 1
            finally:
                problem._gain_engine = None
            assert pool.dispatch_count == 0  # every eval declined...
            assert pool.update_count == 0  # ...and no update IPC was paid
        assert len(engine.drain_ops()) > 0  # ops stayed buffered locally

    def test_served_evals_piggyback_ops_on_the_broadcast(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOST_WORKERS", "2")
        monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
        problem = PROBLEM_FACTORIES["ubqp"]()
        moves = KHammingNeighborhood(problem.n, 2).moves()
        moves.setflags(write=False)
        rng = np.random.default_rng(42)
        solutions = np.stack([problem.random_solution(rng) for _ in range(4)])
        engine = GainEngine(problem, rows_hint=4)
        rows = np.arange(4, dtype=np.int64)
        with host_parallel(problem, max_rows=4, max_moves=moves.shape[0]) as pool:
            problem._gain_engine = engine
            try:
                for _ in range(5):
                    engine.expect(rows)
                    problem.evaluate_neighborhood_batch(solutions, moves)
                    bits = np.stack(
                        [rng.choice(problem.n, size=2, replace=False) for _ in range(4)]
                    ).astype(np.int64)
                    engine.commit(rows, bits)
                    solutions[rows[:, None], bits] ^= 1
            finally:
                problem._gain_engine = None
            assert pool.dispatch_count == 5
            # The op stream rode the eval broadcasts; no standalone sends.
            assert pool.update_count <= pool.dispatch_count
        # Everything up to the last broadcast was drained into it; only the
        # commit issued after the final eval is still buffered.
        assert [op[0] for op in engine.drain_ops()] == ["commit"]
