"""Fast-path vs legacy trajectory identity, end to end.

The precompiled PPP delta evaluator (``REPRO_PPP_FAST``) is a pure host-side
speedup: with the same seeds, the pipeline must follow bit-for-bit the same
best-fitness trajectories and produce identical transfer accounting —
byte/launch counters and simulated makespans — whether the bilinear scorer
or the chunked reference evaluation runs underneath.  These tests run the
same workload twice, once per setting, across all four transfer modes.
"""

import numpy as np
import pytest

from repro.core import GPUEvaluator
from repro.harness import run_ppp_experiment
from repro.localsearch import TRANSFER_MODES, MultiStartRunner
from repro.neighborhoods import KHammingNeighborhood
from repro.problems.instances import instance_seed, make_table_instance
from repro.problems.ppp import _FAST_ENV

SPEC = (21, 21)
ORDER = 2
MAX_ITERATIONS = 10
REPLICAS = 5


def _seeds() -> list[int]:
    return [instance_seed(*SPEC, trial) for trial in range(REPLICAS)]


def _multistart_records(mode: str) -> list[tuple]:
    problem = make_table_instance(SPEC, trial=0)
    neighborhood = KHammingNeighborhood(problem.n, ORDER)
    with GPUEvaluator(problem, neighborhood) as evaluator:
        runner = MultiStartRunner(
            evaluator,
            algorithm="tabu",
            max_iterations=MAX_ITERATIONS,
            track_history=True,
            transfer_mode=mode,
        )
        results = runner.run(seeds=_seeds())
        stats = evaluator.context.stats
        counters = (
            stats.kernel_launches,
            stats.h2d_bytes,
            stats.d2h_bytes,
            evaluator.context.timeline.elapsed,
        )
    records = [
        (tuple(r.history), r.best_fitness, r.iterations, r.stopping_reason,
         tuple(r.best_solution))
        for r in results
    ]
    return records, counters


def _experiment_row(mode: str) -> dict:
    row = run_ppp_experiment(
        SPEC,
        ORDER,
        trials=REPLICAS,
        max_iterations=MAX_ITERATIONS,
        evaluator_factory="gpu",
        trial_mode="batched",
        transfer_mode=mode,
    )
    return {
        "records": [
            (t.trial, t.fitness, t.iterations, t.success) for t in row.trials
        ],
        "h2d_bytes": row.h2d_bytes,
        "d2h_bytes": row.d2h_bytes,
        "p2p_bytes": row.p2p_bytes,
        "kernel_launches": row.kernel_launches,
        "sim_elapsed_s": row.sim_elapsed_s,
    }


@pytest.mark.parametrize("mode", TRANSFER_MODES)
def test_lockstep_trajectories_identical(mode, monkeypatch):
    """Fast and legacy paths trace identical fitness histories and counters."""
    monkeypatch.setenv(_FAST_ENV, "0")
    legacy_records, legacy_counters = _multistart_records(mode)
    monkeypatch.setenv(_FAST_ENV, "1")
    fast_records, fast_counters = _multistart_records(mode)
    assert fast_records == legacy_records
    assert fast_counters == legacy_counters


@pytest.mark.parametrize("mode", TRANSFER_MODES)
def test_experiment_rows_identical(mode, monkeypatch):
    """The harness reports identical trials, bytes, launches and makespans."""
    monkeypatch.setenv(_FAST_ENV, "0")
    legacy = _experiment_row(mode)
    monkeypatch.setenv(_FAST_ENV, "1")
    fast = _experiment_row(mode)
    assert fast == legacy


def test_fast_path_actually_engages(monkeypatch):
    """Guard against the fast path silently never activating in this config."""
    monkeypatch.setenv(_FAST_ENV, "1")
    problem = make_table_instance(SPEC, trial=0)
    scorer = problem._fast()
    assert scorer is not None and scorer.exact
    moves = np.array([(i, j) for i in range(problem.n)
                      for j in range(i + 1, problem.n)], dtype=np.int64)
    moves.setflags(write=False)
    assert scorer.move_table(moves) is not None
