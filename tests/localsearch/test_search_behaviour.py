"""Behavioural tests of the LS loop: stopping integration, history, evaluations accounting."""

import numpy as np

from repro.core import CPUEvaluator
from repro.localsearch import (
    AnyOf,
    HillClimbing,
    MaxEvaluations,
    MaxIterations,
    NoImprovement,
    TabuSearch,
    TargetFitness,
)
from repro.neighborhoods import KHammingNeighborhood, OneHammingNeighborhood
from repro.problems import OneMax, PermutedPerceptronProblem, UBQP


class TestStoppingIntegration:
    def test_max_evaluations_stops_mid_run(self):
        problem = OneMax(20)
        neighborhood = OneHammingNeighborhood(20)
        search = TabuSearch(
            CPUEvaluator(problem, neighborhood),
            stopping=AnyOf(TargetFitness(-1.0), MaxEvaluations(100)),
        )
        result = search.run(initial_solution=np.zeros(20, dtype=np.int8), rng=0)
        assert result.stopping_reason == "max_evaluations"
        # 100 evaluations at 20 per iteration -> stops after 5 full iterations.
        assert result.iterations == 5
        assert result.evaluations == 100

    def test_no_improvement_stops_stagnating_tabu_search(self):
        problem = UBQP.random(15, rng=3)
        neighborhood = OneHammingNeighborhood(15)
        search = TabuSearch(
            CPUEvaluator(problem, neighborhood),
            tenure=3,
            stopping=AnyOf(MaxIterations(500), NoImprovement(10)),
        )
        result = search.run(rng=1)
        assert result.stopping_reason in ("no_improvement", "max_iterations")
        if result.stopping_reason == "no_improvement":
            assert result.iterations < 500

    def test_target_fitness_precedence_over_iteration_cap(self):
        problem = OneMax(8)
        search = HillClimbing(
            CPUEvaluator(problem, OneHammingNeighborhood(8)),
            stopping=AnyOf(TargetFitness(0.0), MaxIterations(1000)),
        )
        result = search.run(initial_solution=np.zeros(8, dtype=np.int8), rng=0)
        assert result.stopping_reason == "target_reached"
        assert result.iterations == 8


class TestAccountingAndHistory:
    def test_history_length_matches_iterations(self):
        problem = PermutedPerceptronProblem.generate(15, 15, rng=2)
        neighborhood = KHammingNeighborhood(15, 2)
        search = TabuSearch(
            CPUEvaluator(problem, neighborhood),
            max_iterations=17,
            target_fitness=-1.0,
            track_history=True,
        )
        result = search.run(rng=0)
        assert len(result.history) == result.iterations == 17
        # History records the best-so-far, hence non-increasing.
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))

    def test_history_disabled_by_default(self):
        problem = OneMax(10)
        result = HillClimbing(CPUEvaluator(problem, OneHammingNeighborhood(10))).run(rng=0)
        assert result.history == []

    def test_evaluations_equal_iterations_times_neighborhood_size(self):
        problem = PermutedPerceptronProblem.generate(13, 13, rng=1)
        neighborhood = KHammingNeighborhood(13, 3)
        search = TabuSearch(
            CPUEvaluator(problem, neighborhood), max_iterations=9, target_fitness=-1.0
        )
        result = search.run(rng=0)
        # One extra neighborhood evaluation happens on the final (stopping)
        # check only if the loop breaks before evaluating; our loop evaluates
        # exactly once per completed iteration.
        assert result.evaluations == 9 * neighborhood.size

    def test_back_to_back_runs_do_not_leak_state(self):
        # The same TabuSearch object is reused by the harness across trials;
        # the tabu memory and the evaluator statistics must reset per run.
        problem = PermutedPerceptronProblem.generate(15, 15, rng=4)
        neighborhood = KHammingNeighborhood(15, 2)
        search = TabuSearch(
            CPUEvaluator(problem, neighborhood), max_iterations=10, target_fitness=-1.0
        )
        first = search.run(rng=9)
        second = search.run(rng=9)
        assert first.best_fitness == second.best_fitness
        assert first.iterations == second.iterations
        assert np.array_equal(first.best_solution, second.best_solution)
        assert first.evaluations == second.evaluations

    def test_wall_time_and_simulated_time_recorded(self):
        problem = OneMax(12)
        result = HillClimbing(CPUEvaluator(problem, OneHammingNeighborhood(12))).run(rng=0)
        assert result.wall_time > 0
        assert result.simulated_time > 0
