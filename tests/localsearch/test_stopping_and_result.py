"""Tests for stopping criteria and the LSResult record."""

import numpy as np
import pytest

from repro.localsearch import (
    AnyOf,
    LSResult,
    MaxEvaluations,
    MaxIterations,
    NoImprovement,
    SearchState,
    TargetFitness,
    paper_stopping_criterion,
)


def make_state(iteration=0, evaluations=0, best_fitness=10.0, since=0):
    return SearchState(
        iteration=iteration,
        evaluations=evaluations,
        best_fitness=best_fitness,
        iterations_since_improvement=since,
    )


class TestCriteria:
    def test_max_iterations(self):
        crit = MaxIterations(5)
        assert crit.should_stop(make_state(iteration=4)) is None
        assert crit.should_stop(make_state(iteration=5)) == "max_iterations"
        with pytest.raises(ValueError):
            MaxIterations(-1)

    def test_target_fitness(self):
        crit = TargetFitness(0.0)
        assert crit.should_stop(make_state(best_fitness=0.5)) is None
        assert crit.should_stop(make_state(best_fitness=0.0)) == "target_reached"

    def test_max_evaluations(self):
        crit = MaxEvaluations(100)
        assert crit.should_stop(make_state(evaluations=99)) is None
        assert crit.should_stop(make_state(evaluations=100)) == "max_evaluations"
        with pytest.raises(ValueError):
            MaxEvaluations(-5)

    def test_no_improvement(self):
        crit = NoImprovement(3)
        assert crit.should_stop(make_state(since=2)) is None
        assert crit.should_stop(make_state(since=3)) == "no_improvement"
        with pytest.raises(ValueError):
            NoImprovement(0)

    def test_any_of(self):
        crit = AnyOf(MaxIterations(10), TargetFitness(0.0))
        assert crit.should_stop(make_state(iteration=3, best_fitness=5)) is None
        assert crit.should_stop(make_state(iteration=3, best_fitness=0)) == "target_reached"
        assert crit.should_stop(make_state(iteration=10, best_fitness=5)) == "max_iterations"
        with pytest.raises(ValueError):
            AnyOf()

    def test_paper_stopping_criterion(self):
        # n = 101: stops at fitness 0 or after 166650 iterations.
        crit = paper_stopping_criterion(101)
        assert crit.should_stop(make_state(iteration=166649, best_fitness=1)) is None
        assert crit.should_stop(make_state(iteration=166650, best_fitness=1)) == "max_iterations"
        assert crit.should_stop(make_state(iteration=0, best_fitness=0)) == "target_reached"


class TestLSResult:
    def test_summary_and_improvement(self):
        result = LSResult(
            best_solution=np.array([1, 0, 1]),
            best_fitness=2.0,
            iterations=7,
            evaluations=21,
            success=False,
            stopping_reason="max_iterations",
            simulated_time=0.5,
            wall_time=0.01,
            initial_fitness=9.0,
        )
        assert result.improvement == 7.0
        assert "max_iterations" in result.summary()
        assert result.best_solution.dtype == np.int8

    def test_success_summary(self):
        result = LSResult(
            best_solution=np.zeros(4),
            best_fitness=0.0,
            iterations=3,
            evaluations=12,
            success=True,
            stopping_reason="target_reached",
            simulated_time=0.0,
            wall_time=0.0,
            initial_fitness=4.0,
        )
        assert result.summary().startswith("SUCCESS")
