"""Checkpoint/restore and fault-tolerance guarantees of the lockstep runner.

The contract under test: a run that is checkpointed, killed (the runner and
evaluator objects discarded) and restored into a *fresh* runner finishes
bit-identically to an uninterrupted run — trajectories, per-replica records,
transfer byte counters and simulated makespans.  Fault injection (device
death, elastic join, flaky transfers, killed host workers) preserves the
trajectories exactly and changes timing/placement only.
"""

import numpy as np
import pytest

from repro.core.evaluators import GPUEvaluator, MultiGPUEvaluator
from repro.gpu import FaultPlan
from repro.harness.io import load_checkpoint, save_checkpoint
from repro.localsearch.multistart import CHECKPOINT_VERSION, MultiStartRunner
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import UBQP

MODES = ("full", "delta", "reduced", "persistent")
SEEDS = [11, 12, 13, 14, 15, 16]


def make_runner(mode, *, devices=3, rebalance_every=7, active_devices=None):
    problem = UBQP.random(16, rng=3)
    neighborhood = KHammingNeighborhood(problem.n, 2)
    evaluator = MultiGPUEvaluator(
        problem, neighborhood, devices=devices, active_devices=active_devices
    )
    return MultiStartRunner(
        evaluator,
        max_iterations=30,
        transfer_mode=mode,
        rebalance_every=rebalance_every,
        target_fitness=float("-inf"),
    )


def run_signature(runner, result):
    """Everything the bit-identical guarantee covers, in comparable form."""
    contexts = list(runner.evaluator.pool.contexts)
    return {
        "best": [r.best_fitness for r in result],
        "iterations": [r.iterations for r in result],
        "reasons": [r.stopping_reason for r in result],
        "simulated_time": result.simulated_time,
        "h2d": sum(ctx.stats.h2d_bytes for ctx in contexts),
        "d2h": sum(ctx.stats.d2h_bytes for ctx in contexts),
        "p2p": sum(ctx.stats.p2p_bytes for ctx in contexts),
        "launches": sum(ctx.stats.kernel_launches for ctx in contexts),
        "makespan": max(ctx.timeline.elapsed for ctx in contexts),
    }


class TestCheckpointRestore:
    @pytest.mark.parametrize("mode", MODES)
    def test_killed_and_restored_run_is_bit_identical(self, mode, tmp_path):
        reference = make_runner(mode)
        ref_sig = run_signature(reference, reference.run(seeds=SEEDS))

        # Checkpoint mid-run, then "kill" the run: the runner and evaluator
        # objects are dropped and the checkpoint survives only as JSON.
        checkpoints = []
        interrupted = make_runner(mode)
        interrupted.run(
            seeds=SEEDS, checkpoint_every=10, checkpoint_callback=checkpoints.append
        )
        assert checkpoints, "the run never reached a checkpoint boundary"
        path = tmp_path / "checkpoint.json"
        save_checkpoint(path, checkpoints[0])
        del interrupted

        restored = make_runner(mode)
        result = restored.run(resume=load_checkpoint(path))
        assert run_signature(restored, result) == ref_sig

    def test_checkpoint_is_versioned(self):
        runner = make_runner("delta")
        checkpoints = []
        runner.run(seeds=SEEDS, checkpoint_every=10, checkpoint_callback=checkpoints.append)
        bad = dict(checkpoints[0])
        bad["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="checkpoint version"):
            make_runner("delta").run(resume=bad)

    def test_checkpoint_config_mismatch_rejected(self):
        runner = make_runner("delta")
        checkpoints = []
        runner.run(seeds=SEEDS, checkpoint_every=10, checkpoint_callback=checkpoints.append)
        other = make_runner("reduced")
        with pytest.raises(ValueError, match="transfer_mode"):
            other.run(resume=checkpoints[0])

    def test_resume_excludes_population_arguments(self):
        runner = make_runner("delta")
        checkpoints = []
        runner.run(seeds=SEEDS, checkpoint_every=10, checkpoint_callback=checkpoints.append)
        with pytest.raises(ValueError, match="mutually exclusive"):
            make_runner("delta").run(seeds=SEEDS, resume=checkpoints[0])

    def test_checkpoint_every_requires_callback(self):
        with pytest.raises(ValueError, match="checkpoint_callback"):
            make_runner("delta").run(seeds=SEEDS, checkpoint_every=5)
        with pytest.raises(ValueError, match="positive"):
            make_runner("delta").run(
                seeds=SEEDS, checkpoint_every=0, checkpoint_callback=lambda c: None
            )

    def test_single_gpu_checkpoint_restores_too(self):
        def make():
            problem = UBQP.random(14, rng=5)
            neighborhood = KHammingNeighborhood(problem.n, 2)
            return MultiStartRunner(
                GPUEvaluator(problem, neighborhood),
                max_iterations=25,
                transfer_mode="delta",
                target_fitness=float("-inf"),
            )

        reference = make()
        ref = reference.run(seeds=SEEDS)
        checkpoints = []
        make().run(seeds=SEEDS, checkpoint_every=8, checkpoint_callback=checkpoints.append)
        restored = make()
        result = restored.run(resume=checkpoints[0])
        assert [r.best_fitness for r in result] == [r.best_fitness for r in ref]
        assert result.simulated_time == ref.simulated_time
        assert (
            restored.evaluator.context.stats.h2d_bytes
            == reference.evaluator.context.stats.h2d_bytes
        )


class TestFaultRecovery:
    @pytest.mark.parametrize("mode", ("full", "delta", "reduced"))
    @pytest.mark.parametrize("at", (14, 6))  # rebalance boundary (7*2) vs mid-interval
    def test_device_death_preserves_trajectories(self, mode, at):
        reference = make_runner(mode)
        ref = reference.run(seeds=SEEDS)
        faulted = make_runner(mode)
        result = faulted.run(seeds=SEEDS, fault_plan=f"fail:1@{at}")
        assert [r.best_fitness for r in result] == [r.best_fitness for r in ref]
        assert [r.iterations for r in result] == [r.iterations for r in ref]
        assert faulted.evaluator.device_active == (True, False, True)

    def test_join_extends_the_fleet_mid_run(self):
        reference = make_runner("delta")
        ref = reference.run(seeds=SEEDS)
        elastic = make_runner("delta", active_devices=[0, 1])
        result = elastic.run(seeds=SEEDS, fault_plan="join:2@10")
        assert [r.best_fitness for r in result] == [r.best_fitness for r in ref]
        assert elastic.evaluator.device_active == (True, True, True)

    def test_flaky_transfers_are_timing_only(self):
        reference = make_runner("delta")
        ref = reference.run(seeds=SEEDS)
        faulted = make_runner("delta")
        result = faulted.run(seeds=SEEDS, fault_plan="flaky:2@3")
        assert [r.best_fitness for r in result] == [r.best_fitness for r in ref]
        assert faulted.evaluator.pool.engine.retried_transfers == 2
        assert result.simulated_time > ref.simulated_time

    @pytest.mark.parametrize("mode", ("delta", "reduced"))
    def test_restore_across_a_fault_boundary(self, mode, tmp_path):
        plan = "fail:1@10,join:1@20"
        reference = make_runner(mode)
        ref_sig = run_signature(reference, reference.run(seeds=SEEDS, fault_plan=plan))

        checkpoints = []
        make_runner(mode).run(
            seeds=SEEDS,
            fault_plan=plan,
            checkpoint_every=10,
            checkpoint_callback=checkpoints.append,
        )
        path = tmp_path / "checkpoint.json"
        save_checkpoint(path, checkpoints[0])
        restored = make_runner(mode)
        # The resumed run re-applies the fault due at the checkpointed
        # boundary, replaying exactly what the original did after saving.
        result = restored.run(resume=load_checkpoint(path), fault_plan=plan)
        assert run_signature(restored, result) == ref_sig

    def test_fail_validation(self):
        runner = make_runner("delta")
        evaluator = runner.evaluator
        with pytest.raises(ValueError, match="out of range"):
            evaluator.fail_device(7)
        evaluator.fail_device(0)
        with pytest.raises(ValueError, match="already inactive"):
            evaluator.fail_device(0)
        evaluator.fail_device(1)
        with pytest.raises(RuntimeError, match="last active device"):
            evaluator.fail_device(2)
        with pytest.raises(ValueError, match="already active"):
            evaluator.join_device(2)

    def test_persistent_sessions_reject_device_failures(self):
        runner = make_runner("persistent", rebalance_every=None)
        evaluator = runner.evaluator
        problem = runner.problem
        block = np.stack([problem.random_solution(s) for s in range(4)])
        evaluator.begin_search(block, persistent=True)
        try:
            with pytest.raises(RuntimeError, match="persistent"):
                evaluator.fail_device(0)
            # The mask must be untouched by the refused failure.
            assert evaluator.device_active == (True, True, True)
        finally:
            evaluator.end_search()

    def test_fault_plan_object_accepted(self):
        runner = make_runner("delta")
        result = runner.run(seeds=SEEDS, fault_plan=FaultPlan.parse("flaky:1@2"))
        assert runner.evaluator.pool.engine.retried_transfers == 1
        assert len(result) == len(SEEDS)

    def test_device_faults_need_a_multi_device_evaluator(self):
        problem = UBQP.random(12, rng=4)
        neighborhood = KHammingNeighborhood(problem.n, 2)
        runner = MultiStartRunner(
            GPUEvaluator(problem, neighborhood),
            max_iterations=10,
            target_fitness=float("-inf"),
        )
        with pytest.raises(RuntimeError, match="multi-device"):
            runner.run(seeds=SEEDS[:3], fault_plan="fail:0@2")


class TestElasticPartitions:
    def test_partial_fleet_from_construction(self):
        runner = make_runner("delta", active_devices=[1])
        result = runner.run(seeds=SEEDS)
        reference = make_runner("delta")
        ref = reference.run(seeds=SEEDS)
        assert [r.best_fitness for r in result] == [r.best_fitness for r in ref]
        # Inactive devices never receive work.
        contexts = runner.evaluator.pool.contexts
        assert contexts[0].stats.kernel_launches == 0
        assert contexts[2].stats.kernel_launches == 0
        assert contexts[1].stats.kernel_launches > 0

    def test_active_devices_validation(self):
        problem = UBQP.random(12, rng=4)
        neighborhood = KHammingNeighborhood(problem.n, 2)
        with pytest.raises(ValueError, match="out of range"):
            MultiGPUEvaluator(problem, neighborhood, devices=2, active_devices=[5])
        with pytest.raises(ValueError, match="at least one"):
            MultiGPUEvaluator(problem, neighborhood, devices=2, active_devices=[])

    def test_full_fleet_partitioner_matches_pool(self):
        runner = make_runner("delta")
        evaluator = runner.evaluator
        parts = evaluator._partitions(100)
        pool_parts = evaluator.pool.partitions(100, evaluator._kernel_cost())
        assert [(p.start, p.stop) for p in parts] == [
            (p.start, p.stop) for p in pool_parts
        ]
