"""Tests for the lockstep multi-start runner."""

import numpy as np
import pytest

from repro.core import CPUEvaluator, GPUEvaluator
from repro.localsearch import HillClimbing, MultiStartRunner, TabuSearch
from repro.localsearch.hill_climbing import FirstImprovementHillClimbing
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import OneMax, PermutedPerceptronProblem

SEEDS = list(range(8))


@pytest.fixture(scope="module")
def ppp():
    return PermutedPerceptronProblem.generate(25, 25, rng=0)


def serial_results(search_cls, evaluator, seeds, **kwargs):
    search = search_cls(evaluator, **kwargs)
    return [search.run(rng=seed) for seed in seeds]


def assert_replica_matches(serial, batched):
    assert serial.best_fitness == batched.best_fitness
    assert serial.iterations == batched.iterations
    assert serial.evaluations == batched.evaluations
    assert serial.stopping_reason == batched.stopping_reason
    assert serial.success == batched.success
    assert serial.initial_fitness == batched.initial_fitness
    assert np.array_equal(serial.best_solution, batched.best_solution)


class TestLockstepParity:
    @pytest.mark.parametrize("order", [1, 2])
    def test_tabu_matches_serial_runs(self, ppp, order):
        neighborhood = KHammingNeighborhood(ppp.n, order)
        serial = serial_results(TabuSearch, CPUEvaluator(ppp, neighborhood), SEEDS,
                                max_iterations=40)
        runner = MultiStartRunner(CPUEvaluator(ppp, neighborhood), algorithm="tabu",
                                  max_iterations=40)
        batched = runner.run(seeds=SEEDS)
        assert len(batched) == len(SEEDS)
        for s, b in zip(serial, batched):
            assert_replica_matches(s, b)

    def test_tabu_on_gpu_backend(self, ppp):
        neighborhood = KHammingNeighborhood(ppp.n, 1)
        serial = serial_results(TabuSearch, CPUEvaluator(ppp, neighborhood), SEEDS,
                                max_iterations=30)
        runner = MultiStartRunner(GPUEvaluator(ppp, neighborhood), algorithm="tabu",
                                  max_iterations=30)
        for s, b in zip(serial, runner.run(seeds=SEEDS)):
            assert_replica_matches(s, b)

    def test_hill_climbing_matches_serial_runs(self, ppp):
        neighborhood = KHammingNeighborhood(ppp.n, 1)
        serial = serial_results(HillClimbing, CPUEvaluator(ppp, neighborhood), SEEDS,
                                max_iterations=500)
        runner = MultiStartRunner(CPUEvaluator(ppp, neighborhood),
                                  algorithm="hill-climbing", max_iterations=500)
        batched = runner.run(seeds=SEEDS)
        assert {r.stopping_reason for r in batched} >= {"local_optimum"}
        for s, b in zip(serial, batched):
            assert_replica_matches(s, b)

    def test_first_improvement_matches_serial_runs(self, ppp):
        neighborhood = KHammingNeighborhood(ppp.n, 1)
        serial = serial_results(FirstImprovementHillClimbing,
                                CPUEvaluator(ppp, neighborhood), SEEDS,
                                max_iterations=500)
        runner = MultiStartRunner(CPUEvaluator(ppp, neighborhood),
                                  algorithm="first-improvement", max_iterations=500)
        for s, b in zip(serial, runner.run(seeds=SEEDS)):
            assert_replica_matches(s, b)

    def test_history_tracking_matches(self, ppp):
        neighborhood = KHammingNeighborhood(ppp.n, 1)
        serial = serial_results(TabuSearch, CPUEvaluator(ppp, neighborhood), SEEDS[:4],
                                max_iterations=20, track_history=True)
        runner = MultiStartRunner(CPUEvaluator(ppp, neighborhood), algorithm="tabu",
                                  max_iterations=20, track_history=True)
        for s, b in zip(serial, runner.run(seeds=SEEDS[:4])):
            assert s.history == b.history


class TestRunnerBehaviour:
    def test_target_reached_replicas_stop_early(self):
        problem = OneMax(10)
        neighborhood = KHammingNeighborhood(10, 1)
        runner = MultiStartRunner(CPUEvaluator(problem, neighborhood), algorithm="tabu",
                                  max_iterations=100)
        result = runner.run(seeds=list(range(5)))
        assert all(r.stopping_reason == "target_reached" for r in result)
        assert all(r.success for r in result)
        assert result.num_successes == 5
        assert result.best_fitness == 0.0

    def test_explicit_initial_solutions(self):
        problem = OneMax(10)
        neighborhood = KHammingNeighborhood(10, 1)
        starts = np.zeros((3, 10), dtype=np.int8)  # worst point: all zeros
        runner = MultiStartRunner(CPUEvaluator(problem, neighborhood),
                                  algorithm="hill-climbing", max_iterations=100)
        result = runner.run(initial_solutions=starts)
        assert all(r.initial_fitness == 10.0 for r in result)
        assert all(r.best_fitness == 0.0 for r in result)

    def test_replicas_without_seeds(self):
        problem = OneMax(12)
        neighborhood = KHammingNeighborhood(12, 1)
        runner = MultiStartRunner(CPUEvaluator(problem, neighborhood),
                                  algorithm="hill-climbing", max_iterations=50)
        result = runner.run(4, rng=0)
        assert len(result) == 4

    def test_result_container(self, ppp):
        neighborhood = KHammingNeighborhood(ppp.n, 1)
        runner = MultiStartRunner(CPUEvaluator(ppp, neighborhood), max_iterations=10)
        result = runner.run(seeds=SEEDS[:3])
        assert len(list(iter(result))) == 3
        assert result[0].iterations <= 10
        assert result.best.best_fitness == result.best_fitness
        assert result.iterations <= 10
        assert result.wall_time > 0
        assert result.simulated_time > 0
        assert "replicas" in result.summary()

    def test_batched_evaluation_count_is_amortized(self, ppp):
        # The whole point: R replicas advance with one evaluator call per
        # lockstep iteration, not R calls.
        neighborhood = KHammingNeighborhood(ppp.n, 1)
        evaluator = CPUEvaluator(ppp, neighborhood)
        runner = MultiStartRunner(evaluator, algorithm="tabu", max_iterations=15)
        result = runner.run(seeds=SEEDS)
        assert evaluator.stats.calls == result.iterations
        assert result.iterations <= 15

    def test_validation_errors(self, ppp):
        neighborhood = KHammingNeighborhood(ppp.n, 1)
        evaluator = CPUEvaluator(ppp, neighborhood)
        with pytest.raises(ValueError):
            MultiStartRunner(evaluator, algorithm="annealing")
        with pytest.raises(ValueError):
            MultiStartRunner(evaluator, tenure=-1)
        with pytest.raises(ValueError):
            MultiStartRunner(evaluator, max_iterations=-1)
        runner = MultiStartRunner(evaluator, max_iterations=5)
        with pytest.raises(ValueError):
            runner.run()  # no replicas, seeds or initial solutions
        with pytest.raises(ValueError):
            runner.run(0)
        with pytest.raises(ValueError):
            runner.run(3, seeds=[1, 2])
        with pytest.raises(ValueError):
            runner.run(initial_solutions=np.zeros((2, ppp.n + 1), dtype=np.int8))
