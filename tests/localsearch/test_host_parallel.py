"""Host-parallel lockstep engine: sharded runs must be bit-identical.

The container running CI may report a single core, so these tests force real
multi-process sharding through the uncapped ``REPRO_HOST_WORKERS`` override
and drop the dispatch threshold to one element — exactly the escape hatches
the pool documents for this purpose.
"""

import warnings

import numpy as np
import pytest

import repro.parallel.pool as pool_mod
from repro.harness.experiment import run_ppp_experiment
from repro.localsearch.multistart import MultiStartRunner
from repro.parallel import (
    DEFAULT_MIN_WORK,
    HostWorkerPool,
    WorkerDied,
    host_parallel,
    resolve_host_workers,
    shard_bounds,
    shutdown_host_pool,
)
from repro.problems import UBQP, MaxSat


@pytest.fixture(autouse=True)
def _pool_teardown():
    yield
    shutdown_host_pool()


def test_resolve_host_workers_semantics(monkeypatch):
    monkeypatch.delenv("REPRO_HOST_WORKERS", raising=False)
    assert resolve_host_workers(None) == 1
    assert resolve_host_workers(1) == 1
    import os

    assert resolve_host_workers(10_000) == (os.cpu_count() or 1)
    with pytest.raises(ValueError):
        resolve_host_workers(0)
    # The environment override wins and is deliberately uncapped.
    monkeypatch.setenv("REPRO_HOST_WORKERS", "6")
    assert resolve_host_workers(None) == 6
    with pytest.warns(RuntimeWarning, match="overrides host_workers=2"):
        assert resolve_host_workers(2) == 6
    monkeypatch.setenv("REPRO_HOST_WORKERS", "not-a-number")
    with pytest.raises(ValueError):
        resolve_host_workers(None)


@pytest.mark.parametrize("num_rows,num_workers", [(7, 3), (6, 4), (2, 2), (10, 2), (3, 5)])
def test_shard_bounds_partition_exactly(num_rows, num_workers):
    bounds = [shard_bounds(num_rows, num_workers, w) for w in range(num_workers)]
    assert bounds[0][0] == 0 and bounds[-1][1] == num_rows
    for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
        assert hi == lo  # contiguous, non-overlapping
    sizes = [hi - lo for lo, hi in bounds]
    assert max(sizes) - min(sizes) <= 1  # balanced to within one row


def _frozen_pairs(rng, n, num):
    a = rng.integers(0, n, size=num)
    b = (a + 1 + rng.integers(0, n - 1, size=num)) % n
    moves = np.stack([a, b], axis=1).astype(np.int64)
    moves.setflags(write=False)
    return moves


@pytest.mark.parametrize("problem_factory", [lambda: UBQP.random(30, rng=1),
                                             lambda: MaxSat.random(30, 120, rng=2)])
def test_pool_evaluation_matches_local(problem_factory, monkeypatch):
    monkeypatch.setenv("REPRO_HOST_WORKERS", "3")
    monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
    problem = problem_factory()
    rng = np.random.default_rng(0)
    solutions = rng.integers(0, 2, size=(7, problem.n), dtype=np.int8)
    moves = _frozen_pairs(rng, problem.n, 100)
    local = problem.evaluate_neighborhood_batch(solutions, moves)
    with host_parallel(problem, max_rows=7, max_moves=100) as pool:
        assert pool is not None and problem._host_pool is pool
        sharded = problem.evaluate_neighborhood_batch(solutions, moves)
        assert pool.dispatch_count == 1
        out = np.empty_like(local)
        assert problem.evaluate_neighborhood_batch(solutions, moves, out=out) is out
        assert pool.dispatch_count == 2
    assert problem._host_pool is None  # detached: back to the class default
    np.testing.assert_array_equal(local, sharded)
    np.testing.assert_array_equal(local, out)


def test_pool_declines_unshardable_batches(monkeypatch):
    monkeypatch.setenv("REPRO_HOST_WORKERS", "2")
    monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
    problem = UBQP.random(20, rng=3)
    rng = np.random.default_rng(4)
    solutions = rng.integers(0, 2, size=(6, 20), dtype=np.int8)
    frozen = _frozen_pairs(rng, 20, 40)
    with host_parallel(problem, max_rows=6, max_moves=40) as pool:
        writable = np.array(frozen)
        problem.evaluate_neighborhood_batch(solutions, writable)
        assert pool.dispatch_count == 0  # writable move table -> local
        problem.evaluate_neighborhood_batch(solutions[:1], frozen)
        assert pool.dispatch_count == 0  # single row -> local
        monkeypatch.setenv("REPRO_HOST_MIN_WORK", str(DEFAULT_MIN_WORK))
        problem.evaluate_neighborhood_batch(solutions, frozen)
        assert pool.dispatch_count == 0  # under the dispatch threshold
        monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
        assert pool.try_evaluate(problem, solutions, frozen[:0]) is None  # no moves
        big = rng.integers(0, 2, size=(1000, 20), dtype=np.int8)
        assert pool.try_evaluate(problem, big, frozen) is None  # over capacity
        problem.evaluate_neighborhood_batch(solutions, frozen)
        assert pool.dispatch_count == 1


def test_worker_errors_surface_in_parent(monkeypatch):
    monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
    problem = UBQP.random(12, rng=5)
    pool = HostWorkerPool(2, solution_capacity=12 * 4, out_capacity=4 * 12)
    try:
        pool.attach(problem)
        rng = np.random.default_rng(6)
        solutions = rng.integers(0, 2, size=(4, 12), dtype=np.int8)
        bad = np.full((5, 1), 99, dtype=np.int64)  # out-of-range bit index
        bad.setflags(write=False)
        with pytest.raises(RuntimeError, match="host worker pool"):
            pool.try_evaluate(problem, solutions, bad)
    finally:
        pool.shutdown()


def test_resolve_host_workers_env_override_warns(monkeypatch):
    monkeypatch.setenv("REPRO_HOST_WORKERS", "6")
    # Disagreement between an explicit request and the environment override
    # is recorded (a silently rewritten experiment config is hard to debug).
    with pytest.warns(RuntimeWarning, match="REPRO_HOST_WORKERS=6 overrides"):
        assert resolve_host_workers(2) == 6
    # Agreement warns nothing.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_host_workers(6) == 6
        assert resolve_host_workers(None) == 6
    # A non-positive override clamps to single-process (and still warns on
    # disagreement with an explicit request).
    monkeypatch.setenv("REPRO_HOST_WORKERS", "-3")
    with pytest.warns(RuntimeWarning):
        assert resolve_host_workers(4) == 1
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_host_workers(None) == 1
    # An invalid explicit request is rejected before the env is consulted.
    with pytest.raises(ValueError, match="host_workers"):
        resolve_host_workers(0)
    with pytest.raises(ValueError, match="host_workers"):
        resolve_host_workers(-2)


def test_forked_child_never_unlinks_parent_shm(monkeypatch):
    monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
    problem = UBQP.random(10, rng=12)
    pool = HostWorkerPool(2, solution_capacity=4 * 10, out_capacity=4 * 8)
    try:
        pool.attach(problem)
        # A forked child inherits the pool object and the module atexit
        # hook; its shutdown must be a no-op so the parent's shared memory
        # and workers survive the child's exit.
        ctx = pool_mod.multiprocessing.get_context("fork")
        child = ctx.Process(target=_child_shutdown_attempt, args=(pool,))
        child.start()
        child.join(timeout=10)
        assert child.exitcode == 0
        assert pool.alive
        rng = np.random.default_rng(13)
        solutions = rng.integers(0, 2, size=(4, 10), dtype=np.int8)
        moves = _frozen_pairs(rng, 10, 8)
        sharded = pool.try_evaluate(problem, solutions, moves)
        assert sharded is not None  # the pool still works after the fork
    finally:
        pool.shutdown()


def _child_shutdown_attempt(pool):
    # Runs in the forked child: the inherited pool must present as unusable
    # and both teardown paths must refuse to touch it (shutdown returns
    # without unlinking the parent's shared memory or stopping its workers).
    import sys

    if pool.alive:  # non-owner process: must never report alive
        sys.exit(2)
    pool.shutdown()
    shutdown_host_pool()  # the module atexit hook takes this same path
    sys.exit(0)


def test_kill_worker_mid_run_is_bit_identical(monkeypatch):
    # A worker killed between lockstep iterations: the runner's fault hook
    # kills it, the next dispatch detects the death, the pool tears itself
    # down and every later batch evaluates locally — same trajectories.
    monkeypatch.setenv("REPRO_HOST_WORKERS", "2")
    monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
    from repro.core.evaluators import CPUEvaluator
    from repro.neighborhoods import KHammingNeighborhood

    def make_runner():
        problem = UBQP.random(14, rng=20)
        neighborhood = KHammingNeighborhood(problem.n, 2)
        return MultiStartRunner(
            CPUEvaluator(problem, neighborhood),
            max_iterations=12,
            target_fitness=float("-inf"),
        )

    monkeypatch.delenv("REPRO_HOST_WORKERS", raising=False)
    reference = make_runner().run(seeds=[1, 2, 3, 4])
    monkeypatch.setenv("REPRO_HOST_WORKERS", "2")
    runner = make_runner()
    result = runner.run(seeds=[1, 2, 3, 4], fault_plan="kill-worker:0@4")
    assert [r.best_fitness for r in result] == [r.best_fitness for r in reference]
    assert [r.iterations for r in result] == [r.iterations for r in reference]
    shutdown_host_pool()


def test_min_work_threshold_env_validation(monkeypatch):
    monkeypatch.delenv("REPRO_HOST_MIN_WORK", raising=False)
    assert pool_mod._min_work() == DEFAULT_MIN_WORK
    monkeypatch.setenv("REPRO_HOST_MIN_WORK", "not-a-number")
    with pytest.raises(ValueError, match="REPRO_HOST_MIN_WORK"):
        pool_mod._min_work()


def test_pool_requires_at_least_two_workers():
    with pytest.raises(ValueError, match="workers"):
        HostWorkerPool(1, solution_capacity=8, out_capacity=8)


def test_get_host_pool_reuses_then_recreates():
    first = pool_mod.get_host_pool(2, solution_capacity=64, out_capacity=64)
    assert first is not None and first.alive
    # A smaller request fits the live pool: the singleton is reused.
    again = pool_mod.get_host_pool(2, solution_capacity=32, out_capacity=32)
    assert again is first
    # A different worker count cannot be satisfied: rebuild, old pool dies.
    bigger = pool_mod.get_host_pool(3, solution_capacity=64, out_capacity=64)
    assert bigger is not first and bigger.num_workers == 3
    assert not first.alive
    first.shutdown()  # idempotent on an already-closed pool
    shutdown_host_pool()
    shutdown_host_pool()  # idempotent on an already-cleared singleton
    assert pool_mod._POOL is None


def test_dead_worker_reported_cleanly(monkeypatch):
    monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
    problem = UBQP.random(10, rng=8)
    pool = HostWorkerPool(2, solution_capacity=4 * 10, out_capacity=4 * 8)
    try:
        pool.attach(problem)
        victim = pool._procs[0]
        victim.terminate()
        victim.join(timeout=5)
        rng = np.random.default_rng(9)
        solutions = rng.integers(0, 2, size=(4, 10), dtype=np.int8)
        moves = _frozen_pairs(rng, 10, 8)
        # The death surfaces mid-broadcast as WorkerDied; try_evaluate
        # swallows it and declines the batch, so the caller falls back to
        # local evaluation instead of seeing a raw EPIPE.
        assert pool.try_evaluate(problem, solutions, moves) is None
        # The pool tore itself down before declining: its shared memory may
        # hold rows the dead worker never wrote, so it must never be reused.
        assert not pool.alive
        assert pool._closed
    finally:
        pool.shutdown()


def test_dead_worker_raises_workerdied_on_attach():
    problem = UBQP.random(10, rng=8)
    pool = HostWorkerPool(2, solution_capacity=4 * 10, out_capacity=4 * 8)
    try:
        victim = pool._procs[1]
        victim.terminate()
        victim.join(timeout=5)
        # Outside the try_evaluate fallback path the death is a hard error.
        with pytest.raises(WorkerDied, match="worker 1 died"):
            pool.attach(problem)
        assert not pool.alive
    finally:
        pool.shutdown()


def test_pool_side_table_cache_is_bounded(monkeypatch):
    monkeypatch.setenv("REPRO_HOST_WORKERS", "2")
    monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
    problem = UBQP.random(10, rng=10)
    local_problem = UBQP.random(10, rng=10)  # identical instance, never pooled
    rng = np.random.default_rng(11)
    solutions = rng.integers(0, 2, size=(4, 10), dtype=np.int8)
    with host_parallel(problem, max_rows=4, max_moves=8) as pool:
        tables = [_frozen_pairs(rng, 10, 8) for _ in range(pool_mod.MAX_TABLES + 3)]
        for moves in tables:
            local = local_problem.evaluate_neighborhood_batch(solutions, moves)
            sharded = problem.evaluate_neighborhood_batch(solutions, moves)
            np.testing.assert_array_equal(local, sharded)
        assert len(pool._tables) <= pool_mod.MAX_TABLES
        assert pool.dispatch_count == len(tables)


def test_single_worker_request_is_a_no_op(monkeypatch):
    monkeypatch.delenv("REPRO_HOST_WORKERS", raising=False)
    problem = UBQP.random(10, rng=7)
    with host_parallel(problem, 1, max_rows=8, max_moves=10) as pool:
        assert pool is None
        assert problem._host_pool is None


REPLICAS = 6
SPEC = (21, 21)
LOCKSTEP_ITERATIONS = 10


def _experiment(transfer_mode, track_history=True):
    evaluator = "cpu" if transfer_mode == "full" else "gpu"
    return run_ppp_experiment(
        SPEC,
        2,
        trials=REPLICAS,
        max_iterations=LOCKSTEP_ITERATIONS,
        trial_mode="batched",
        evaluator_factory=evaluator,
        transfer_mode=transfer_mode,
        track_history=track_history,
    )


@pytest.mark.parametrize("transfer_mode", ["full", "delta", "reduced", "persistent"])
@pytest.mark.parametrize("workers", [2, 4])
def test_sharded_lockstep_is_bit_identical(transfer_mode, workers, monkeypatch):
    # workers=4 does not divide the 6 replicas: uneven shards are exercised.
    monkeypatch.delenv("REPRO_HOST_WORKERS", raising=False)
    baseline = _experiment(transfer_mode)
    monkeypatch.setenv("REPRO_HOST_WORKERS", str(workers))
    monkeypatch.setenv("REPRO_HOST_MIN_WORK", "1")
    sharded = _experiment(transfer_mode)
    if transfer_mode != "full":
        # The simulated-GPU modes evaluate through the frozen kernel move
        # table, so the pool must actually have sharded the lockstep batch.
        assert pool_mod._POOL is not None and pool_mod._POOL.dispatch_count > 0
    for t_base, t_shard in zip(baseline.trials, sharded.trials):
        assert t_base.fitness == t_shard.fitness
        assert t_base.iterations == t_shard.iterations
        assert t_base.success == t_shard.success
    for attr in ("h2d_bytes", "d2h_bytes", "p2p_bytes", "kernel_launches", "sim_elapsed_s"):
        assert getattr(baseline, attr) == getattr(sharded, attr), attr


def test_runner_host_workers_capped_matches_baseline(monkeypatch):
    # An explicit request is capped at the machine's core count; whatever
    # the cap resolves to, results must match the single-process baseline.
    monkeypatch.delenv("REPRO_HOST_WORKERS", raising=False)
    baseline = _experiment("full", track_history=False)
    capped = run_ppp_experiment(
        SPEC,
        2,
        trials=REPLICAS,
        max_iterations=LOCKSTEP_ITERATIONS,
        trial_mode="batched",
        transfer_mode="full",
        host_workers=2,
    )
    for t_base, t_capped in zip(baseline.trials, capped.trials):
        assert t_base.fitness == t_capped.fitness
        assert t_base.iterations == t_capped.iterations


def test_host_workers_rejected_outside_batched_mode():
    with pytest.raises(ValueError, match="batched"):
        run_ppp_experiment(SPEC, 2, trials=2, max_iterations=2,
                           trial_mode="serial", host_workers=2)


def test_runner_rejects_bad_host_workers():
    from repro.core.evaluators import CPUEvaluator
    from repro.neighborhoods import KHammingNeighborhood
    from repro.problems import make_table_instance
    from repro.problems.instances import PPPInstanceSpec

    problem = make_table_instance(PPPInstanceSpec(*SPEC), trial=0)
    evaluator = CPUEvaluator(problem, KHammingNeighborhood(problem.n, 1))
    with pytest.raises(ValueError, match="host_workers"):
        MultiStartRunner(evaluator, host_workers=0)
