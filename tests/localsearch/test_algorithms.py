"""Tests for the local-search algorithms (hill climbing, tabu search, SA, ILS, VNS)."""

import numpy as np
import pytest

from repro.core import CPUEvaluator, GPUEvaluator, SequentialEvaluator
from repro.localsearch import (
    FirstImprovementHillClimbing,
    HillClimbing,
    IteratedLocalSearch,
    MaxIterations,
    SimulatedAnnealing,
    TabuSearch,
    VariableNeighborhoodSearch,
)
from repro.neighborhoods import KHammingNeighborhood, OneHammingNeighborhood
from repro.problems import OneMax, PermutedPerceptronProblem, UBQP


@pytest.fixture(scope="module")
def small_ppp():
    return PermutedPerceptronProblem.generate(15, 15, rng=3)


class TestHillClimbing:
    def test_solves_onemax_with_1hamming(self):
        problem = OneMax(24)
        hc = HillClimbing(CPUEvaluator(problem, OneHammingNeighborhood(24)))
        result = hc.run(rng=0)
        assert result.success
        assert result.best_fitness == 0
        assert result.stopping_reason == "target_reached"
        # OneMax needs exactly (number of zero bits) improving steps.
        assert result.iterations == int(result.initial_fitness)

    def test_descent_is_monotone(self):
        problem = UBQP.random(18, rng=1)
        hc = HillClimbing(
            CPUEvaluator(problem, OneHammingNeighborhood(18)),
            max_iterations=200,
            target_fitness=-np.inf,
            track_history=True,
        )
        result = hc.run(rng=2)
        assert result.stopping_reason in ("local_optimum", "max_iterations")
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))

    def test_stops_at_local_optimum(self):
        problem = UBQP.random(12, rng=5)
        hc = HillClimbing(
            CPUEvaluator(problem, OneHammingNeighborhood(12)),
            max_iterations=10_000,
            target_fitness=-np.inf,
        )
        result = hc.run(rng=1)
        if result.stopping_reason == "local_optimum":
            # no 1-Hamming neighbor improves the final solution
            fitnesses = CPUEvaluator(problem, OneHammingNeighborhood(12)).evaluate(
                result.best_solution
            )
            assert fitnesses.min() >= result.best_fitness

    def test_initial_solution_is_respected(self):
        problem = OneMax(10)
        start = np.ones(10, dtype=np.int8)
        hc = HillClimbing(CPUEvaluator(problem, OneHammingNeighborhood(10)))
        result = hc.run(initial_solution=start, rng=0)
        assert result.initial_fitness == 0
        assert result.iterations == 0
        assert result.success

    def test_first_improvement_also_solves_onemax(self):
        problem = OneMax(16)
        hc = FirstImprovementHillClimbing(CPUEvaluator(problem, OneHammingNeighborhood(16)))
        result = hc.run(rng=4)
        assert result.success

    def test_max_iterations_respected(self):
        problem = OneMax(40)
        hc = HillClimbing(CPUEvaluator(problem, OneHammingNeighborhood(40)), max_iterations=3)
        result = hc.run(initial_solution=np.zeros(40, dtype=np.int8), rng=0)
        assert result.iterations == 3
        assert result.stopping_reason == "max_iterations"


class TestTabuSearch:
    def test_default_tenure_follows_paper_rule(self, small_ppp):
        neighborhood = KHammingNeighborhood(small_ppp.n, 2)
        ts = TabuSearch(CPUEvaluator(small_ppp, neighborhood), max_iterations=1)
        assert ts.tenure == neighborhood.size // 6

    def test_invalid_tenure_rejected(self, small_ppp):
        with pytest.raises(ValueError):
            TabuSearch(
                CPUEvaluator(small_ppp, OneHammingNeighborhood(small_ppp.n)),
                tenure=-2,
                max_iterations=1,
            )

    def test_moves_become_tabu_after_application(self):
        problem = OneMax(12)
        ts = TabuSearch(
            CPUEvaluator(problem, OneHammingNeighborhood(12)),
            tenure=5,
            max_iterations=4,
            target_fitness=-1.0,  # never reached: force 4 iterations
        )
        result = ts.run(initial_solution=np.zeros(12, dtype=np.int8), rng=0)
        assert result.iterations == 4
        # Four distinct moves must have been applied (each flip becomes tabu).
        applied = np.nonzero(ts._last_applied > -(2**62))[0]
        assert len(applied) == 4

    def test_escapes_local_optima_unlike_hill_climbing(self):
        # On a rugged UBQP instance, tabu search with enough iterations must
        # reach a fitness at least as good as plain hill climbing.
        problem = UBQP.random(20, rng=9)
        neighborhood = OneHammingNeighborhood(20)
        hc_result = HillClimbing(
            CPUEvaluator(problem, neighborhood), max_iterations=500, target_fitness=-np.inf
        ).run(rng=11)
        ts_result = TabuSearch(
            CPUEvaluator(problem, neighborhood), tenure=7, max_iterations=500, target_fitness=-np.inf
        ).run(rng=11)
        assert ts_result.best_fitness <= hc_result.best_fitness

    def test_recovers_corrupted_secret_with_2hamming(self, small_ppp):
        # A 2-Hamming move preserves the parity of the Hamming distance to the
        # secret, so start from a solution at even distance: the secret with
        # four bits flipped.  The tabu search must recover a zero-fitness
        # solution from there.
        from repro.problems.base import flip_bits

        corrupted = flip_bits(small_ppp.secret, (0, 3, 7, 11))
        neighborhood = KHammingNeighborhood(small_ppp.n, 2)
        ts = TabuSearch(
            CPUEvaluator(small_ppp, neighborhood),
            tenure=10,
            max_iterations=300,
        )
        result = ts.run(initial_solution=corrupted, rng=7)
        assert result.success
        assert small_ppp.evaluate(result.best_solution) == 0

    def test_gpu_and_cpu_evaluators_yield_identical_trajectories(self, small_ppp):
        neighborhood = KHammingNeighborhood(small_ppp.n, 2)
        kwargs = dict(tenure=10, max_iterations=40, target_fitness=-1.0)
        cpu_result = TabuSearch(CPUEvaluator(small_ppp, neighborhood), **kwargs).run(rng=5)
        gpu_result = TabuSearch(GPUEvaluator(small_ppp, neighborhood), **kwargs).run(rng=5)
        assert cpu_result.best_fitness == gpu_result.best_fitness
        assert np.array_equal(cpu_result.best_solution, gpu_result.best_solution)
        assert cpu_result.iterations == gpu_result.iterations

    def test_aspiration_can_be_disabled(self, small_ppp):
        neighborhood = OneHammingNeighborhood(small_ppp.n)
        ts = TabuSearch(
            CPUEvaluator(small_ppp, neighborhood),
            tenure=3,
            aspiration=False,
            max_iterations=10,
            target_fitness=-1.0,
        )
        result = ts.run(rng=1)
        assert result.iterations == 10

    def test_all_tabu_fallback_keeps_search_alive(self):
        # Tiny neighborhood + huge tenure: quickly every move is tabu and the
        # search must still progress via the oldest-move fallback.
        problem = OneMax(4)
        ts = TabuSearch(
            CPUEvaluator(problem, OneHammingNeighborhood(4)),
            tenure=1000,
            aspiration=False,
            max_iterations=12,
            target_fitness=-1.0,
        )
        result = ts.run(initial_solution=np.zeros(4, dtype=np.int8), rng=0)
        assert result.iterations == 12

    def test_simulated_time_accumulates(self, small_ppp):
        neighborhood = KHammingNeighborhood(small_ppp.n, 2)
        ts = TabuSearch(GPUEvaluator(small_ppp, neighborhood), max_iterations=5, target_fitness=-1.0)
        result = ts.run(rng=0)
        assert result.simulated_time > 0
        assert result.evaluations == 5 * neighborhood.size


class TestLargerNeighborhoodsImproveQuality:
    def test_3hamming_beats_1hamming_on_small_ppp(self):
        """The paper's central qualitative claim, scaled down to a unit test.

        On the paper's instances the 3-Hamming tabu search finds more
        solutions and better average fitness than the 1-Hamming one (Tables I
        vs III).  On a small instance with a small iteration budget the same
        ordering must hold: the 3-Hamming search converges in far fewer
        iterations and at least matches the 1-Hamming quality.
        """
        problem = PermutedPerceptronProblem.generate(25, 25, rng=10)
        stats = {}
        for k in (1, 2, 3):
            neighborhood = KHammingNeighborhood(problem.n, k)
            ts = TabuSearch(
                CPUEvaluator(problem, neighborhood),
                max_iterations=30,
                tenure=max(1, neighborhood.size // 6),
            )
            results = [ts.run(rng=seed) for seed in range(6)]
            stats[k] = {
                "mean_fitness": np.mean([r.best_fitness for r in results]),
                "successes": sum(r.success for r in results),
            }
        # Number of successful tries grows with the neighborhood order
        # (the pattern of Tables I -> II -> III).
        assert stats[1]["successes"] <= stats[2]["successes"] <= stats[3]["successes"]
        assert stats[3]["successes"] > stats[1]["successes"]
        # And the large neighborhood also wins on average fitness.
        assert stats[3]["mean_fitness"] <= stats[1]["mean_fitness"]


class TestSimulatedAnnealing:
    def test_parameter_validation(self):
        problem = OneMax(10)
        with pytest.raises(ValueError):
            SimulatedAnnealing(problem, cooling=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealing(problem, initial_temperature=-1)
        with pytest.raises(ValueError):
            SimulatedAnnealing(problem, steps_per_temperature=0)

    def test_solves_onemax(self):
        problem = OneMax(20)
        sa = SimulatedAnnealing(problem, max_steps=20_000, initial_temperature=2.0)
        result = sa.run(rng=0)
        assert result.best_fitness <= 2  # near-optimal, usually 0

    def test_respects_max_steps(self):
        problem = OneMax(30)
        sa = SimulatedAnnealing(problem, max_steps=100, target_fitness=-1.0)
        result = sa.run(rng=1)
        assert result.iterations == 100


class TestIteratedAndVNS:
    def test_ils_improves_over_single_descent(self):
        problem = UBQP.random(24, rng=3)
        evaluator = CPUEvaluator(problem, OneHammingNeighborhood(24))
        single = HillClimbing(evaluator, max_iterations=500, target_fitness=-np.inf).run(rng=8)
        ils = IteratedLocalSearch(evaluator, restarts=8, perturbation_strength=4,
                                  target_fitness=-np.inf)
        multi = ils.run(rng=8)
        assert multi.best_fitness <= single.best_fitness

    def test_ils_parameter_validation(self):
        problem = OneMax(8)
        evaluator = CPUEvaluator(problem, OneHammingNeighborhood(8))
        with pytest.raises(ValueError):
            IteratedLocalSearch(evaluator, restarts=0)
        with pytest.raises(ValueError):
            IteratedLocalSearch(evaluator, perturbation_strength=0)

    def test_vns_explores_increasing_orders(self):
        problem = PermutedPerceptronProblem.generate(13, 13, rng=4)
        vns = VariableNeighborhoodSearch(problem, max_order=3, max_rounds=10)
        result = vns.run(rng=2)
        assert result.best_fitness <= result.initial_fitness
        assert len(vns.evaluators) == 3
        assert [ev.neighborhood.order for ev in vns.evaluators] == [1, 2, 3]

    def test_vns_parameter_validation(self):
        problem = OneMax(8)
        with pytest.raises(ValueError):
            VariableNeighborhoodSearch(problem, max_order=0)
        with pytest.raises(ValueError):
            VariableNeighborhoodSearch(problem, max_rounds=0)

    def test_vns_solves_onemax(self):
        problem = OneMax(15)
        vns = VariableNeighborhoodSearch(problem, max_order=2, max_rounds=5)
        result = vns.run(rng=0)
        assert result.success


class TestSequentialEvaluatorEquivalence:
    def test_sequential_and_vectorized_runs_match(self, small_ppp):
        neighborhood = OneHammingNeighborhood(small_ppp.n)
        kwargs = dict(tenure=4, max_iterations=15, target_fitness=-1.0)
        a = TabuSearch(SequentialEvaluator(small_ppp, neighborhood), **kwargs).run(rng=3)
        b = TabuSearch(CPUEvaluator(small_ppp, neighborhood), **kwargs).run(rng=3)
        assert a.best_fitness == b.best_fitness
        assert a.iterations == b.iterations
        assert np.array_equal(a.best_solution, b.best_solution)
