"""Cross-mode equivalence matrix: every transfer mode, bit-identical.

The transfer modes (``full`` → ``delta`` → ``reduced`` → ``persistent``)
progressively move work and state onto the device — culminating in the
persistent launch that runs the whole iteration loop on-device with the tabu
memory device-resident.  None of that is allowed to change *what* the search
computes: for a given seed, every mode must follow bit-for-bit the same
best-fitness trajectory on every problem family and every neighborhood
order.  This matrix is the safety net under the persistent-kernel runtime.
"""

import numpy as np
import pytest

from repro.core import CPUEvaluator, GPUEvaluator
from repro.localsearch import (
    TRANSFER_MODES,
    IteratedLocalSearch,
    MultiStartRunner,
    TabuSearch,
    VariableNeighborhoodSearch,
)
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import MaxSat, NKLandscape, OneMax, UBQP, generate_random_ksat
from repro.problems.instances import instance_seed, make_table_instance

#: One representative of every problem family, all over n = 12 bits so the
#: 1/2/3-Hamming neighborhoods (12 / 66 / 220 moves) stay test-sized.
N_BITS = 12


def _ubqp(n: int) -> UBQP:
    rng = np.random.default_rng(7)
    half = rng.normal(size=(n, n))
    return UBQP((half + half.T) / 2.0)


PROBLEM_FACTORIES = {
    "ppp": lambda: make_table_instance((N_BITS, N_BITS), trial=0),
    "onemax": lambda: OneMax(N_BITS),
    "maxsat": lambda: MaxSat(N_BITS, *generate_random_ksat(N_BITS, 30, k=3, rng=7)),
    "nk": lambda: NKLandscape(N_BITS, 3, rng=7),
    "ubqp": lambda: _ubqp(N_BITS),
}

ORDERS = (1, 2, 3)
MAX_ITERATIONS = 12
REPLICAS = 4
SEED = 20260726


def _seeds(count: int = REPLICAS) -> list[int]:
    return [instance_seed(N_BITS, N_BITS, trial) for trial in range(count)]


def _scalar_record(result):
    return (
        tuple(result.history),
        result.best_fitness,
        result.iterations,
        result.stopping_reason,
        tuple(result.best_solution),
    )


def _multistart_records(multi):
    return [
        (tuple(r.history), r.best_fitness, r.iterations, r.stopping_reason,
         tuple(r.best_solution))
        for r in multi
    ]


@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("problem_name", sorted(PROBLEM_FACTORIES))
class TestCrossModeMatrix:
    """full / delta / reduced / persistent agree on every problem x order cell."""

    def test_scalar_tabu_trajectories_identical(self, problem_name, order):
        problem = PROBLEM_FACTORIES[problem_name]()
        neighborhood = KHammingNeighborhood(problem.n, order)
        reference = None
        for mode in TRANSFER_MODES:
            with GPUEvaluator(problem, neighborhood) as evaluator:
                search = TabuSearch(
                    evaluator,
                    max_iterations=MAX_ITERATIONS,
                    track_history=True,
                    transfer_mode=mode,
                )
                record = _scalar_record(search.run(rng=SEED))
            if reference is None:
                reference = record
            assert record == reference, f"{problem_name}/{order}-Hamming/{mode} diverged"

    def test_multistart_tabu_trajectories_identical(self, problem_name, order):
        problem = PROBLEM_FACTORIES[problem_name]()
        neighborhood = KHammingNeighborhood(problem.n, order)
        reference = None
        for mode in TRANSFER_MODES:
            with GPUEvaluator(problem, neighborhood) as evaluator:
                runner = MultiStartRunner(
                    evaluator,
                    algorithm="tabu",
                    max_iterations=MAX_ITERATIONS,
                    track_history=True,
                    transfer_mode=mode,
                )
                records = _multistart_records(runner.run(seeds=_seeds()))
            if reference is None:
                reference = records
            assert records == reference, f"{problem_name}/{order}-Hamming/{mode} diverged"


@pytest.mark.parametrize("algorithm", MultiStartRunner.ALGORITHMS)
def test_multistart_algorithms_all_modes_identical(algorithm):
    """Every vectorized selection rule survives every transfer mode."""
    problem = PROBLEM_FACTORIES["ppp"]()
    neighborhood = KHammingNeighborhood(problem.n, 2)
    reference = None
    for mode in TRANSFER_MODES:
        with GPUEvaluator(problem, neighborhood) as evaluator:
            runner = MultiStartRunner(
                evaluator,
                algorithm=algorithm,
                max_iterations=MAX_ITERATIONS,
                transfer_mode=mode,
            )
            records = _multistart_records(runner.run(seeds=_seeds()))
        if reference is None:
            reference = records
        assert records == reference, f"{algorithm}/{mode} diverged"


def test_tabu_zero_tenure_all_modes_identical():
    """tenure=0 (everything admissible) exercises the device-tabu edge case."""
    problem = PROBLEM_FACTORIES["ppp"]()
    neighborhood = KHammingNeighborhood(problem.n, 2)
    reference = None
    for mode in TRANSFER_MODES:
        with GPUEvaluator(problem, neighborhood) as evaluator:
            runner = MultiStartRunner(
                evaluator,
                algorithm="tabu",
                tenure=0,
                max_iterations=MAX_ITERATIONS,
                transfer_mode=mode,
            )
            records = _multistart_records(runner.run(seeds=_seeds()))
        if reference is None:
            reference = records
        assert records == reference, f"tenure=0/{mode} diverged"


def test_tabu_saturated_tenure_exercises_device_escape():
    """A huge tenure forces the robust-tabu escape, now resolved on-device."""
    problem = PROBLEM_FACTORIES["ppp"]()
    neighborhood = KHammingNeighborhood(problem.n, 1)
    reference = None
    for mode in TRANSFER_MODES:
        with GPUEvaluator(problem, neighborhood) as evaluator:
            runner = MultiStartRunner(
                evaluator,
                algorithm="tabu",
                tenure=10 * neighborhood.size,
                aspiration=False,
                max_iterations=2 * neighborhood.size,
                transfer_mode=mode,
            )
            records = _multistart_records(runner.run(seeds=_seeds()))
        if reference is None:
            reference = records
        assert records == reference, f"saturated-tenure/{mode} diverged"


class TestRestartSearchTransferModes:
    """ILS/VNS inner descents honour transfer_mode (the former ROADMAP gap)."""

    def test_ils_all_modes_identical(self):
        problem = PROBLEM_FACTORIES["ppp"]()
        neighborhood = KHammingNeighborhood(problem.n, 2)
        reference = None
        for mode in TRANSFER_MODES:
            with GPUEvaluator(problem, neighborhood) as evaluator:
                search = IteratedLocalSearch(
                    evaluator,
                    restarts=3,
                    descent_max_iterations=MAX_ITERATIONS,
                    transfer_mode=mode,
                )
                result = search.run(rng=SEED)
                record = (
                    result.best_fitness,
                    result.iterations,
                    result.stopping_reason,
                    tuple(result.best_solution),
                )
            if reference is None:
                reference = record
            assert record == reference, f"ILS/{mode} diverged"

    def test_vns_all_modes_identical(self):
        problem = PROBLEM_FACTORIES["ppp"]()
        reference = None
        for mode in TRANSFER_MODES:
            evaluators = []

            def factory(prob, nb):
                evaluator = GPUEvaluator(prob, nb)
                evaluators.append(evaluator)
                return evaluator

            search = VariableNeighborhoodSearch(
                problem,
                max_order=2,
                evaluator_factory=factory,
                max_iterations_per_descent=MAX_ITERATIONS,
                max_rounds=3,
                transfer_mode=mode,
            )
            result = search.run(rng=SEED)
            record = (
                result.best_fitness,
                result.iterations,
                result.stopping_reason,
                tuple(result.best_solution),
            )
            for evaluator in evaluators:
                evaluator.close()
            if reference is None:
                reference = record
            assert record == reference, f"VNS/{mode} diverged"

    def test_vns_descents_actually_run_resident(self):
        """The inner descents really drive the device-resident pipeline."""
        problem = PROBLEM_FACTORIES["ppp"]()
        evaluators = []

        def factory(prob, nb):
            evaluator = GPUEvaluator(prob, nb)
            evaluators.append(evaluator)
            return evaluator

        search = VariableNeighborhoodSearch(
            problem,
            max_order=2,
            evaluator_factory=factory,
            max_iterations_per_descent=MAX_ITERATIONS,
            max_rounds=2,
            transfer_mode="persistent",
        )
        search.run(rng=SEED)
        # Persistent descents issue one launch per *descent* (never one per
        # iteration), so launches can never exceed the in-loop reductions.
        assert evaluators, "factory never called"
        ran_persistent = False
        for evaluator in evaluators:
            stats = evaluator.context.stats
            if stats.kernel_launches:
                assert stats.kernel_launches <= stats.reductions
                assert evaluator.last_persistent_record is not None
                ran_persistent = True
        assert ran_persistent, "no descent ever reached the device"
        for evaluator in evaluators:
            evaluator.close()

    @pytest.mark.parametrize("mode", ("delta", "reduced", "persistent"))
    def test_cpu_backends_reject_resident_modes(self, mode):
        problem = PROBLEM_FACTORIES["ppp"]()
        neighborhood = KHammingNeighborhood(problem.n, 1)
        evaluator = CPUEvaluator(problem, neighborhood)
        with pytest.raises(ValueError, match="device-resident"):
            IteratedLocalSearch(evaluator, transfer_mode=mode)
        with pytest.raises(ValueError, match="device-resident"):
            VariableNeighborhoodSearch(problem, max_order=1, transfer_mode=mode)

    def test_unknown_mode_rejected(self):
        problem = PROBLEM_FACTORIES["ppp"]()
        neighborhood = KHammingNeighborhood(problem.n, 1)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            with pytest.raises(ValueError, match="unknown transfer_mode"):
                IteratedLocalSearch(evaluator, transfer_mode="telepathy")
