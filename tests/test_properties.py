"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CPUEvaluator, GPUEvaluator, best_admissible_move, best_move
from repro.mappings import ExactKHammingMapping, mapping_for
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import OneMax, PermutedPerceptronProblem
from repro.problems.base import flip_bits


class TestMappingProperties:
    @settings(max_examples=100, deadline=None)
    @given(n=st.integers(min_value=4, max_value=60), k=st.integers(min_value=1, max_value=4))
    def test_mapping_is_a_bijection_on_random_samples(self, n, k):
        if k > n:
            return
        mapping = mapping_for(n, k)
        rng = np.random.default_rng(n * 131 + k)
        idx = rng.integers(0, mapping.size, size=min(64, mapping.size))
        moves = mapping.from_flat_batch(idx)
        # strictly increasing moves in range
        if k > 1:
            assert np.all(np.diff(moves, axis=1) > 0)
        assert moves.min() >= 0 and moves.max() < n
        assert np.array_equal(mapping.to_flat_batch(moves), idx)

    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(min_value=5, max_value=40), k=st.integers(min_value=1, max_value=3))
    def test_closed_forms_agree_with_exact_reference(self, n, k):
        fast = mapping_for(n, k)
        exact = ExactKHammingMapping(n, k)
        idx = np.arange(min(fast.size, 200))
        assert np.array_equal(fast.from_flat_batch(idx), exact.from_flat_batch(idx))


class TestNeighborhoodProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=80),
        k=st.integers(min_value=1, max_value=3),
        parts=st.integers(min_value=1, max_value=9),
    )
    def test_partition_is_a_cover_without_overlap(self, n, k, parts):
        if k > n:
            return
        nb = KHammingNeighborhood(n, k)
        slices = nb.partition(parts)
        assert len(slices) == parts
        covered = np.concatenate([s.indices() for s in slices]) if slices else np.array([])
        assert covered.size == nb.size
        assert np.array_equal(np.sort(covered), np.arange(nb.size))
        sizes = [s.size for s in slices]
        assert max(sizes) - min(sizes) <= 1


class TestPPPProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_objective_invariant_under_row_permutation(self, seed):
        """The PPP objective only sees the histogram of A V', so permuting the
        rows of A (together with S) must not change any fitness value."""
        rng = np.random.default_rng(seed)
        problem = PermutedPerceptronProblem.generate(13, 11, rng=seed)
        perm = rng.permutation(problem.m)
        permuted = PermutedPerceptronProblem(problem.A[perm], problem.S[perm])
        bits = problem.random_solution(rng)
        assert problem.evaluate(bits) == permuted.evaluate(bits)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_fitness_zero_iff_histogram_matches_and_constraints_hold(self, seed):
        problem = PermutedPerceptronProblem.generate(11, 11, rng=seed)
        bits = problem.random_solution(seed)
        V = 2 * bits.astype(np.int64) - 1
        Y = problem.A.astype(np.int64) @ V
        hist = np.bincount(np.clip(Y, 0, problem.n), minlength=problem.n + 1)[1:]
        expected_zero = bool(np.all(Y >= 0) and np.array_equal(hist, problem.target_histogram))
        assert (problem.evaluate(bits) == 0) == expected_zero

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_moving_to_selected_best_neighbor_matches_reported_fitness(self, seed):
        problem = PermutedPerceptronProblem.generate(12, 12, rng=seed)
        neighborhood = KHammingNeighborhood(12, 2)
        evaluator = CPUEvaluator(problem, neighborhood)
        bits = problem.random_solution(seed)
        fitnesses = evaluator.evaluate(bits)
        selected = best_move(fitnesses)
        move = neighborhood.mapping.from_flat(selected.index)
        assert problem.evaluate(flip_bits(bits, move)) == selected.fitness


class TestSelectionProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        fitnesses=st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                           min_size=1, max_size=50),
        data=st.data(),
    )
    def test_best_admissible_never_returns_forbidden_without_aspiration(self, fitnesses, data):
        fitnesses = np.array(fitnesses)
        forbidden = np.array(data.draw(
            st.lists(st.booleans(), min_size=len(fitnesses), max_size=len(fitnesses))
        ))
        selected = best_admissible_move(fitnesses, forbidden)
        if selected is None:
            assert forbidden.all()
        else:
            assert not forbidden[selected.index]
            admissible_values = fitnesses[~forbidden]
            assert selected.fitness == admissible_values.min()


class TestEvaluatorProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_000))
    def test_gpu_and_cpu_evaluators_always_agree(self, seed):
        problem = OneMax(17)
        neighborhood = KHammingNeighborhood(17, 2)
        bits = problem.random_solution(seed)
        cpu = CPUEvaluator(problem, neighborhood).evaluate(bits)
        gpu = GPUEvaluator(problem, neighborhood).evaluate(bits)
        assert np.array_equal(cpu, gpu)
