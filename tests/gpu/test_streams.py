"""Streams, events and the overlap-aware timeline."""

import numpy as np
import pytest

from repro.core import GPUEvaluator
from repro.gpu import (
    COMPUTE_STREAM,
    COPY_STREAM,
    GPUContext,
    Stream,
    Timeline,
    format_timeline,
    timeline_report,
)
from repro.neighborhoods import KHammingNeighborhood
from repro.problems.instances import make_table_instance


class TestStream:
    def test_intervals_are_monotone_and_non_overlapping(self):
        stream = Stream("s")
        for duration in (0.5, 0.25, 1.0, 0.0, 0.125):
            stream.schedule("kernel", "k", duration)
        intervals = stream.intervals
        assert all(iv.end >= iv.start for iv in intervals)
        for earlier, later in zip(intervals, intervals[1:]):
            assert later.start >= earlier.end

    def test_not_before_delays_start(self):
        stream = Stream("s")
        stream.schedule("h2d", "a", 1.0)
        interval = stream.schedule("h2d", "b", 1.0, not_before=5.0)
        assert interval.start == 5.0
        assert stream.cursor == 6.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Stream("s").schedule("kernel", "k", -1.0)

    def test_busy_time_sums_durations(self):
        stream = Stream("s")
        stream.schedule("kernel", "a", 2.0)
        stream.schedule("kernel", "b", 3.0, not_before=10.0)
        assert stream.busy_time == pytest.approx(5.0)


class TestTimeline:
    def test_elapsed_is_makespan_over_streams(self):
        timeline = Timeline()
        timeline.schedule("kernel", "k", 4.0, stream=COMPUTE_STREAM)
        timeline.schedule("h2d", "c", 1.0, stream=COPY_STREAM)
        assert timeline.elapsed == pytest.approx(4.0)
        assert timeline.busy_time == pytest.approx(5.0)
        assert timeline.overlap_saved == pytest.approx(1.0)

    def test_event_orders_across_streams(self):
        timeline = Timeline()
        timeline.schedule("h2d", "upload", 2.0, stream=COPY_STREAM)
        event = timeline.stream(COPY_STREAM).record_event()
        interval = timeline.schedule(
            "kernel", "k", 1.0, stream=COMPUTE_STREAM, wait_for=event
        )
        assert interval.start == pytest.approx(2.0)

    def test_transfer_hides_under_kernel(self):
        # The motivating overlap: a copy issued on its own stream while a
        # kernel runs does not extend the makespan.
        timeline = Timeline()
        timeline.schedule("kernel", "k", 10.0, stream=COMPUTE_STREAM)
        timeline.schedule("h2d", "mask", 3.0, stream=COPY_STREAM)
        assert timeline.elapsed == pytest.approx(10.0)
        assert timeline.overlap_saved == pytest.approx(3.0)

    def test_sync_serializes_against_all_streams(self):
        timeline = Timeline()
        timeline.schedule("kernel", "k", 4.0, stream=COMPUTE_STREAM)
        interval = timeline.schedule_sync("h2d", "solution", 1.0)
        assert interval.start == pytest.approx(4.0)

    def test_intervals_sorted_by_start(self):
        timeline = Timeline()
        timeline.schedule("kernel", "k", 2.0, stream=COMPUTE_STREAM)
        timeline.schedule("h2d", "c", 0.5, stream=COPY_STREAM)
        starts = [iv.start for iv in timeline.intervals()]
        assert starts == sorted(starts)

    def test_reset_rewinds_everything(self):
        timeline = Timeline()
        timeline.schedule("kernel", "k", 2.0)
        timeline.reset()
        assert timeline.elapsed == 0.0
        assert timeline.intervals() == []


class TestContextTimeline:
    def test_sync_api_matches_serial_stats(self):
        # Null-stream semantics: a purely synchronous workload's timeline
        # makespan equals the serial sum the DeviceStats accumulate.
        problem = make_table_instance((15, 15), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 1)
        evaluator = GPUEvaluator(problem, neighborhood)
        solution = problem.random_solution(np.random.default_rng(0))
        for _ in range(3):
            evaluator.evaluate(solution)
        context = evaluator.context
        assert context.timeline.elapsed == pytest.approx(context.stats.total_time)
        assert context.timeline.overlap_saved == pytest.approx(0.0)

    def test_async_copy_overlaps_sync_epoch(self):
        context = GPUContext()
        context.to_device("a", np.zeros(1 << 20, dtype=np.float64))
        sync_elapsed = context.timeline.elapsed
        # A copy issued on the copy stream starts at that stream's cursor
        # (zero), so it hides entirely under the already-elapsed epoch.
        context.copy_async("b", np.zeros(16, dtype=np.int32))
        assert context.timeline.elapsed == pytest.approx(sync_elapsed)

    def test_reduce_async_accounted_separately(self):
        context = GPUContext()
        context.reduce_async("argmin", 10_000)
        assert context.stats.reductions == 1
        assert context.stats.reduction_time > 0
        assert context.stats.total_time == pytest.approx(context.stats.reduction_time)

    def test_reset_clears_timeline(self):
        context = GPUContext()
        context.to_device("a", np.zeros(8, dtype=np.float64))
        context.reset()
        assert context.timeline.elapsed == 0.0

    def test_timeline_report_renders(self):
        context = GPUContext()
        context.to_device("a", np.zeros(8, dtype=np.float64))
        context.copy_async("b", np.zeros(8, dtype=np.int32))
        report = timeline_report(context)
        assert "makespan" in report
        assert COPY_STREAM in report
        assert timeline_report(context.timeline) == format_timeline(
            context.timeline, limit=40
        )

    def test_free_evaluator_buffers_matches_owner_segments(self):
        context = GPUContext()
        context.alloc("fitnesses:123", (4,))
        context.alloc("solutions:123:0", (4,))
        context.alloc("fitnesses:456", (4,))
        context.alloc("prefix123:junk", (4,))
        freed = context.free_evaluator_buffers(123)
        assert freed == 2
        assert set(context.memory.allocations) == {"fitnesses:456", "prefix123:junk"}
