"""Tests for the kernel-launch profiler."""

import pytest

from repro.core import GPUEvaluator
from repro.gpu import GPUContext, GTX_280, format_profile, profile
from repro.neighborhoods import KHammingNeighborhood, TwoHammingNeighborhood
from repro.problems import PermutedPerceptronProblem


@pytest.fixture()
def profiled_context():
    """A context that ran a few iterations of two different kernels."""
    problem = PermutedPerceptronProblem.generate(21, 21, rng=0)
    context = GPUContext(GTX_280, keep_launch_records=True)
    solution = problem.random_solution(0)
    ev2 = GPUEvaluator(problem, TwoHammingNeighborhood(21), context=context)
    ev3 = GPUEvaluator(problem, KHammingNeighborhood(21, 3), context=context)
    for _ in range(3):
        ev2.evaluate(solution)
    ev3.evaluate(solution)
    return context


class TestProfileAggregation:
    def test_per_kernel_launch_counts(self, profiled_context):
        report = profile(profiled_context)
        assert len(report.kernels) == 2
        by_launches = sorted(k.launches for k in report.kernels.values())
        assert by_launches == [1, 3]

    def test_time_accounting_is_consistent(self, profiled_context):
        report = profile(profiled_context)
        stats = profiled_context.stats
        assert report.total_kernel_time == pytest.approx(stats.kernel_time)
        assert report.transfer_time == pytest.approx(stats.transfer_time)
        assert report.total_time == pytest.approx(stats.total_time)
        fractions = [report.fraction_of_time(name) for name in report.kernels]
        assert 0.99 <= sum(fractions) + report.transfer_time / report.total_time <= 1.01

    def test_larger_kernel_is_slower_per_launch(self, profiled_context):
        report = profile(profiled_context)
        three_h = next(name for name in report.kernels if "3-Hamming" in name)
        two_h = next(name for name in report.kernels if "2-Hamming" in name)
        # A 3-Hamming launch (1330 threads) costs more than a 2-Hamming one
        # (210 threads) per launch.
        per_launch_3 = report.kernels[three_h].kernel_time / report.kernels[three_h].launches
        per_launch_2 = report.kernels[two_h].kernel_time / report.kernels[two_h].launches
        assert per_launch_3 > per_launch_2

    def test_occupancy_and_bound_are_populated(self, profiled_context):
        report = profile(profiled_context)
        for kernel in report.kernels.values():
            assert 0 <= kernel.mean_occupancy <= 1
            assert kernel.dominant_bound in ("memory", "compute")

    def test_requires_launch_records(self):
        problem = PermutedPerceptronProblem.generate(15, 15, rng=0)
        context = GPUContext(GTX_280, keep_launch_records=False)
        ev = GPUEvaluator(problem, TwoHammingNeighborhood(15), context=context)
        ev.evaluate(problem.random_solution(0))
        with pytest.raises(ValueError):
            profile(context)

    def test_empty_context_profiles_cleanly(self):
        report = profile(GPUContext(GTX_280, keep_launch_records=True))
        assert report.kernels == {}
        assert report.total_time == 0.0


class TestProfileFormatting:
    def test_report_contains_kernel_rows_and_transfers(self, profiled_context):
        text = format_profile(profile(profiled_context))
        assert "MoveIncrEvalKernel" in text
        assert "host<->device transfers" in text
        assert "launches" in text.splitlines()[0]
