"""Tests for the multi-device scheduler, the pinned-memory transfer model
and peer-to-peer copies.

Covers the model layer (per-kind transfer pricing, peer link pricing,
weighted partitioning) and the runtime layer (``copy_peer_async`` interval
placement and byte accounting, the staging pool, the scheduler's
cross-device makespan/serialized-sum clocks and merged timeline report).
"""

import numpy as np
import pytest

from repro.gpu import (
    GTX_280,
    GTX_8800,
    TESLA_C1060,
    DeviceScheduler,
    GPUContext,
    HostMemoryKind,
    Kernel,
    KernelCostProfile,
    P2P_STREAM,
    PinnedStagingPool,
    partition_range,
    throughput_weights,
    timeline_report,
    weighted_partition_range,
)
from repro.gpu.timing import GPUTimingModel


def _copy_kernel(name="copy"):
    def body(tids, src, dst):
        dst[tids] = src[tids]

    return Kernel(name=name, vectorized_fn=body, cost=KernelCostProfile(flops=1, gmem_bytes=8))


class TestTransferPricing:
    def test_pageable_pricing_matches_seed_model(self):
        model = GPUTimingModel(GTX_280)
        nbytes = 1 << 20
        expected = GTX_280.pcie_latency + nbytes / GTX_280.pcie_bandwidth
        assert model.transfer_time(nbytes) == pytest.approx(expected)
        assert model.transfer_time(nbytes, HostMemoryKind.PAGEABLE) == pytest.approx(expected)

    def test_pinned_is_strictly_faster_for_any_size(self):
        model = GPUTimingModel(GTX_280)
        for nbytes in (0, 64, 4096, 1 << 22):
            assert model.transfer_time(nbytes, HostMemoryKind.PINNED) < model.transfer_time(
                nbytes, HostMemoryKind.PAGEABLE
            )

    def test_peer_transfer_uses_slower_endpoint(self):
        model = GPUTimingModel(GTX_280)
        alone = model.peer_transfer_time(1 << 20)
        with_peer = model.peer_transfer_time(1 << 20, TESLA_C1060)
        assert alone == pytest.approx(
            GTX_280.p2p_latency + (1 << 20) / GTX_280.p2p_bandwidth
        )
        assert with_peer >= alone

    def test_peer_transfer_rejects_incapable_device(self):
        with pytest.raises(ValueError, match="peer-to-peer"):
            GPUTimingModel(GTX_8800).peer_transfer_time(100)
        with pytest.raises(ValueError, match="peer-to-peer"):
            GPUTimingModel(GTX_280).peer_transfer_time(100, GTX_8800)

    def test_negative_bytes_rejected(self):
        model = GPUTimingModel(GTX_280)
        with pytest.raises(ValueError):
            model.transfer_time(-1, HostMemoryKind.PINNED)
        with pytest.raises(ValueError):
            model.peer_transfer_time(-1)


class TestPinnedStagingPool:
    def test_counters_and_block_rounding(self):
        pool = PinnedStagingPool(block_bytes=4096)
        assert pool.stage(100) == 4096
        assert pool.stage(4097) == 8192
        assert pool.stagings == 2
        assert pool.staged_bytes == 4197
        assert pool.high_water_bytes == 8192
        pool.reset()
        assert pool.stagings == 0 and pool.high_water_bytes == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PinnedStagingPool().stage(-1)

    def test_pinned_context_stages_async_packets(self):
        ctx = GPUContext(GTX_280, pinned=True)
        ctx.copy_async("packet", np.zeros(100, dtype=np.uint8))
        assert ctx.staging_pool.stagings == 1
        assert ctx.memory.bytes_transferred("h2d", HostMemoryKind.PINNED) == 100
        assert ctx.memory.bytes_transferred("h2d", HostMemoryKind.PAGEABLE) == 0

    def test_pageable_context_has_no_pool(self):
        ctx = GPUContext(GTX_280)
        assert ctx.staging_pool is None
        ctx.copy_async("packet", np.zeros(100, dtype=np.uint8))
        assert ctx.memory.bytes_transferred("h2d", HostMemoryKind.PAGEABLE) == 100

    def test_pinned_workload_is_faster_than_pageable(self):
        results = {}
        for pinned in (False, True):
            ctx = GPUContext(GTX_280, pinned=pinned)
            for step in range(5):
                ctx.to_device(f"buf{step}", np.zeros(1024, dtype=np.float64))
                ctx.to_host(f"buf{step}")
            results[pinned] = ctx.stats.transfer_time
        assert results[True] < results[False]


class TestPeerCopies:
    def test_copy_appears_on_both_timelines_and_p2p_counters_only(self):
        src = GPUContext(GTX_280)
        dst = GPUContext(GTX_280)
        payload = np.arange(256, dtype=np.uint8)
        event = src.copy_peer_async(dst, "landing", payload)
        assert np.array_equal(dst.memory.get("landing").data, payload)
        assert src.stats.p2p_bytes == 256
        assert src.stats.peer_transfers == 1
        # No host round trip: the h2d/d2h counters stay untouched on both ends.
        assert src.stats.h2d_bytes == 0 and src.stats.d2h_bytes == 0
        assert dst.stats.h2d_bytes == 0 and dst.stats.d2h_bytes == 0
        for ctx in (src, dst):
            intervals = ctx.timeline.stream(P2P_STREAM).intervals
            assert len(intervals) == 1
            assert intervals[0].kind == "p2p"
        assert event.time == pytest.approx(
            src.timing.peer_transfer_time(256, dst.device)
        )

    def test_link_is_shared_consecutive_copies_serialize(self):
        src = GPUContext(GTX_280)
        dst = GPUContext(GTX_280)
        first = src.copy_peer_async(dst, "a", np.zeros(128, dtype=np.uint8))
        second = src.copy_peer_async(dst, "b", np.zeros(128, dtype=np.uint8))
        assert second.time >= 2 * (first.time - 0) - 1e-15

    def test_incapable_endpoint_raises(self):
        src = GPUContext(GTX_280)
        dst = GPUContext(GTX_8800)
        assert not src.can_access_peer(dst)
        with pytest.raises(RuntimeError, match="p2p-capable"):
            src.copy_peer_async(dst, "x", np.zeros(8, dtype=np.uint8))


class TestWeightedPartitioning:
    def test_equal_weights_reduce_to_even_split(self):
        for total, parts in [(103, 4), (10, 3), (7, 7), (0, 2), (3, 5)]:
            even = partition_range(total, parts)
            weighted = weighted_partition_range(total, [2.5] * parts)
            assert weighted == even

    def test_proportional_and_covering(self):
        parts = weighted_partition_range(100, [3.0, 1.0])
        assert parts[0].size == 75 and parts[1].size == 25
        assert parts[0].start == 0 and parts[-1].stop == 100
        for a, b in zip(parts, parts[1:]):
            assert a.stop == b.start

    def test_largest_remainder_sums_exactly(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            total = int(rng.integers(0, 500))
            weights = rng.uniform(0.1, 10.0, size=int(rng.integers(1, 6)))
            parts = weighted_partition_range(total, weights)
            assert sum(p.size for p in parts) == total
            shares = total * weights / weights.sum()
            for part, share in zip(parts, shares):
                assert abs(part.size - share) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_partition_range(-1, [1.0])
        with pytest.raises(ValueError):
            weighted_partition_range(10, [])
        with pytest.raises(ValueError):
            weighted_partition_range(10, [1.0, -1.0])
        with pytest.raises(ValueError):
            weighted_partition_range(10, [0.0, 0.0])

    def test_throughput_weights_homogeneous_equal(self):
        weights = throughput_weights([GTX_280, GTX_280, GTX_280])
        assert weights[0] == weights[1] == weights[2]

    def test_throughput_weights_order_faster_device_heavier(self):
        cost = KernelCostProfile(flops=100.0, gmem_bytes=50.0)
        w280, w8800 = throughput_weights([GTX_280, GTX_8800], cost)
        assert w280 > w8800


class TestDeviceScheduler:
    def test_concurrent_issue_overlaps_devices(self):
        contexts = [GPUContext(GTX_280) for _ in range(3)]
        scheduler = DeviceScheduler(contexts)
        kernel = _copy_kernel()
        src = np.ones(4096)
        for i in range(3):
            upload = scheduler.upload(i, "src", src)
            scheduler.launch(i, kernel, 4096, (src, np.empty(4096)), wait_for=[upload])
            scheduler.download(i, "src", wait_for=[upload])
        # All three devices ran the same chain concurrently: the pool-level
        # makespan is one chain, the serialized sum is three.
        assert scheduler.makespan < scheduler.serialized_sum
        assert scheduler.overlap_saved == pytest.approx(
            scheduler.serialized_sum - scheduler.makespan
        )
        assert scheduler.makespan == pytest.approx(max(scheduler.per_device_elapsed))

    def test_cross_device_event_ordering(self):
        contexts = [GPUContext(GTX_280), GPUContext(GTX_280)]
        scheduler = DeviceScheduler(contexts)
        upload = scheduler.upload(0, "a", np.zeros(1 << 16))
        # An operation on device 1 gated by an event from device 0 cannot
        # start before that event fires.
        gated = scheduler.upload(1, "b", np.zeros(16, dtype=np.uint8), wait_for=[upload])
        interval = contexts[1].timeline.stream("h2d").intervals[0]
        assert interval.start >= upload.time
        assert gated.time > upload.time

    def test_host_ops_count_into_makespan(self):
        contexts = [GPUContext(GTX_280)]
        scheduler = DeviceScheduler(contexts)
        event = scheduler.host_op("gather", "partials", 1.0)
        assert event.time == pytest.approx(1.0)
        assert scheduler.makespan == pytest.approx(1.0)
        assert scheduler.serialized_sum == pytest.approx(1.0)

    def test_merged_timeline_report(self):
        contexts = [GPUContext(GTX_280), GPUContext(GTX_280)]
        scheduler = DeviceScheduler(contexts)
        for i in range(2):
            scheduler.upload(i, "x", np.zeros(1024))
        scheduler.host_op("gather", "results", 1e-6)
        report = timeline_report(scheduler)
        assert "gpu0:h2d" in report and "gpu1:h2d" in report
        assert "host:host" in report
        assert "makespan" in report
        # A bare context list merges the same way (without the host rows).
        report_list = timeline_report(contexts)
        assert "gpu1:h2d" in report_list and "host:host" not in report_list

    def test_route_peer_and_capability(self):
        capable = DeviceScheduler([GPUContext(GTX_280), GPUContext(GTX_280)])
        assert capable.all_peer_capable
        event = capable.route_peer(0, 1, "pkt", np.zeros(64, dtype=np.uint8))
        assert event.time > 0
        mixed = DeviceScheduler([GPUContext(GTX_280), GPUContext(GTX_8800)])
        assert not mixed.all_peer_capable
        assert not mixed.can_route_peer(0, 1)

    def test_reset_rewinds_everything(self):
        scheduler = DeviceScheduler([GPUContext(GTX_280)])
        scheduler.upload(0, "x", np.zeros(128))
        scheduler.host_op("gather", "y", 1e-6)
        scheduler.reset()
        assert scheduler.makespan == 0.0
        assert scheduler.serialized_sum == 0.0

    def test_needs_at_least_one_context(self):
        with pytest.raises(ValueError):
            DeviceScheduler([])
