"""Unit tests of the interconnect engine: links, topologies, routing and
progressive fair-share arbitration.

The load-bearing invariants:

* a *single* transfer prices bit-identically to the legacy
  ``GPUTimingModel.transfer_time`` / ``peer_transfer_time`` model on every
  preset topology (the back-compat contract);
* overlapping transfers on a shared link each see their fair share of its
  capacity, so a contended copy is never faster than a dedicated one;
* bytes are conserved per link regardless of how the arbitration stretched
  the copies.
"""

import numpy as np
import pytest

from repro.gpu import (
    GTX_280,
    GTX_8800,
    DeviceScheduler,
    GPUContext,
    HostMemoryKind,
    InterconnectTopology,
    Link,
    MultiGPU,
    TransferEngine,
    TransferRequest,
    format_interconnect,
    resolve_topology,
    timeline_report,
)
from repro.gpu.timing import GPUTimingModel

MIB = 1 << 20


def shared4():
    return InterconnectTopology.shared_uplink([GTX_280] * 4)


def dedicated4():
    return InterconnectTopology.dedicated([GTX_280] * 4)


class TestLinksAndTopology:
    def test_link_validation(self):
        with pytest.raises(ValueError):
            Link(name="bad", bandwidth=0.0)
        with pytest.raises(ValueError):
            Link(name="bad", bandwidth=1.0, latency=-1.0)

    def test_device_link_kind_properties(self):
        topo = dedicated4()
        link = topo.links["pcie:gpu0"]
        assert link.rate_cap(HostMemoryKind.PAGEABLE) == GTX_280.pcie_bandwidth
        assert link.rate_cap(HostMemoryKind.PINNED) == GTX_280.pcie_pinned_bandwidth
        assert link.kind_latency(HostMemoryKind.PAGEABLE) == GTX_280.pcie_latency
        assert link.kind_latency(HostMemoryKind.PINNED) == GTX_280.pcie_pinned_latency

    def test_presets_route_every_device(self):
        for name in ("dedicated", "shared", "switched", "nvlink"):
            topo = resolve_topology(name, [GTX_280] * 3)
            for key in topo.device_keys:
                route = topo.host_route(key, HostMemoryKind.PAGEABLE)
                assert route.links
                assert route.rate_cap <= GTX_280.pcie_pinned_bandwidth

    def test_shared_presets_have_an_uplink_dedicated_does_not(self):
        assert dedicated4().uplink is None
        for name in ("shared", "switched", "nvlink"):
            topo = resolve_topology(name, [GTX_280] * 2)
            assert topo.uplink is not None
            assert topo.uplink.shared

    def test_peer_routes_follow_capability(self):
        mixed = resolve_topology("shared", [GTX_280, GTX_8800])
        assert not mixed.has_peer_route("gpu0", "gpu1")
        capable = resolve_topology("shared", [GTX_280, GTX_280])
        assert capable.has_peer_route("gpu0", "gpu1")
        assert capable.has_peer_route("gpu1", "gpu0")  # symmetric

    def test_nvlink_mesh_is_fat_and_low_latency(self):
        topo = resolve_topology("nvlink", [GTX_280] * 2)
        route = topo.peer_route("gpu0", "gpu1")
        assert route.rate_cap > GTX_280.p2p_bandwidth
        assert route.latency < GTX_280.p2p_latency

    def test_resolve_validates(self):
        with pytest.raises(ValueError, match="unknown topology"):
            resolve_topology("ring", [GTX_280])
        with pytest.raises(ValueError, match="describes"):
            resolve_topology(shared4(), [GTX_280] * 2)
        with pytest.raises(TypeError):
            resolve_topology(42, [GTX_280])
        with pytest.raises(KeyError):
            shared4().host_route("gpu9", HostMemoryKind.PAGEABLE)

    def test_context_rejects_engine_plus_topology(self):
        engine = TransferEngine(dedicated4())
        with pytest.raises(ValueError, match="not both"):
            GPUContext(GTX_280, engine=engine, topology="shared")
        with pytest.raises(ValueError, match="device_key"):
            GPUContext(GTX_280, engine=engine, device_key="gpu9")


class TestSingleTransferBackCompat:
    @pytest.mark.parametrize("topology", ["dedicated", "shared", "switched", "nvlink"])
    @pytest.mark.parametrize("kind", [HostMemoryKind.PAGEABLE, HostMemoryKind.PINNED])
    def test_host_copy_bit_identical_to_legacy_model(self, topology, kind):
        engine = TransferEngine(resolve_topology(topology, [GTX_280] * 4))
        legacy = GPUTimingModel(GTX_280)
        # Disjoint one-second windows: each copy is alone on its route.
        for slot, nbytes in enumerate((1, 4096, 12345, 4 * MIB)):
            for direction in ("h2d", "d2h"):
                grant = engine.transfer(
                    "gpu2", direction, nbytes, kind=kind, start=float(slot)
                )
                assert grant.duration == legacy.transfer_time(nbytes, kind)
                assert grant.stall == 0.0

    def test_peer_copy_bit_identical_to_legacy_model(self):
        engine = TransferEngine(dedicated4())
        legacy = GPUTimingModel(GTX_280)
        grant = engine.peer_transfer("gpu0", "gpu3", 98765)
        assert grant.duration == legacy.peer_transfer_time(98765, GTX_280)

    def test_zero_bytes_costs_latency_only(self):
        engine = TransferEngine(shared4())
        grant = engine.transfer("gpu0", "h2d", 0, kind=HostMemoryKind.PAGEABLE)
        assert grant.duration == GTX_280.pcie_latency

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            TransferEngine(shared4()).transfer("gpu0", "h2d", -1)

    def test_unknown_direction_and_missing_peer(self):
        engine = TransferEngine(shared4())
        with pytest.raises(ValueError, match="direction"):
            engine.transfer("gpu0", "sideways", 10)
        with pytest.raises(ValueError, match="destination"):
            engine.transfer_batch(
                [TransferRequest(device="gpu0", direction="p2p", nbytes=1)]
            )
        mixed = TransferEngine(resolve_topology("shared", [GTX_280, GTX_8800]))
        with pytest.raises(ValueError, match="no peer route"):
            mixed.peer_transfer("gpu0", "gpu1", 10)


class TestFairShareArbitration:
    def test_concurrent_uploads_split_the_uplink(self):
        # The headline contention scenario: four simultaneous replica
        # uploads on a shared root complex must each crawl at ~1/4 of the
        # uplink — at least 3x the dedicated-link time — while the same
        # batch on dedicated links runs at full rate.
        for kind in (HostMemoryKind.PAGEABLE, HostMemoryKind.PINNED):
            requests = [
                TransferRequest(
                    device=f"gpu{i}", direction="h2d", nbytes=4 * MIB, kind=kind
                )
                for i in range(4)
            ]
            contended = TransferEngine(shared4()).transfer_batch(requests)
            dedicated = TransferEngine(dedicated4()).transfer_batch(requests)
            for slow, fast in zip(contended, dedicated):
                assert fast.duration == fast.dedicated
                assert slow.duration >= 3.0 * fast.duration
                assert slow.stall > 0.0

    def test_two_equal_transfers_halve_the_rate(self):
        engine = TransferEngine(shared4())
        grants = engine.transfer_batch(
            [
                TransferRequest(
                    device=f"gpu{i}", direction="h2d", nbytes=8 * MIB,
                    kind=HostMemoryKind.PINNED,
                )
                for i in range(2)
            ]
        )
        nominal = 8 * MIB / GTX_280.pcie_pinned_bandwidth
        for grant in grants:
            assert grant.duration - GTX_280.pcie_pinned_latency == pytest.approx(
                2 * nominal
            )

    def test_duplex_directions_do_not_contend(self):
        engine = TransferEngine(shared4())
        grants = engine.transfer_batch(
            [
                TransferRequest(device="gpu0", direction="h2d", nbytes=MIB),
                TransferRequest(device="gpu1", direction="d2h", nbytes=MIB),
            ]
        )
        for grant in grants:
            assert grant.stall == 0.0

    def test_half_duplex_directions_do_contend(self):
        half = Link(name="bus", bandwidth=1e9, latency=0.0, duplex=False)
        topo = InterconnectTopology(
            "half",
            device_keys=["gpu0", "gpu1"],
            host_paths={"gpu0": (half,), "gpu1": (half,)},
            peer_paths={},
        )
        grants = TransferEngine(topo).transfer_batch(
            [
                TransferRequest(device="gpu0", direction="h2d", nbytes=MIB, kind=None),
                TransferRequest(device="gpu1", direction="d2h", nbytes=MIB, kind=None),
            ]
        )
        for grant in grants:
            assert grant.duration == pytest.approx(2 * MIB / 1e9)

    def test_progressive_arbitration_never_stretches_committed_grants(self):
        engine = TransferEngine(shared4())
        first = engine.transfer("gpu0", "h2d", 4 * MIB, kind=HostMemoryKind.PINNED)
        # A later arrival overlaps the committed transfer: it is slowed by
        # the residual share, the committed grant is immutable.
        second = engine.transfer(
            "gpu1", "h2d", 4 * MIB, kind=HostMemoryKind.PINNED, start=0.0
        )
        assert first.duration == first.dedicated
        assert second.duration > second.dedicated
        # Half the second transfer ran at half rate (under the first), the
        # rest at full rate once the uplink freed up.
        assert second.duration == pytest.approx(1.5 * first.dedicated, rel=1e-6)

    def test_disjoint_windows_do_not_contend(self):
        engine = TransferEngine(shared4())
        first = engine.transfer("gpu0", "h2d", MIB)
        later = engine.transfer("gpu1", "h2d", MIB, start=first.end + 1.0)
        assert later.stall == 0.0

    def test_contended_is_never_faster_than_dedicated(self):
        rng = np.random.default_rng(11)
        engine = TransferEngine(shared4())
        for _ in range(40):
            grant = engine.transfer(
                f"gpu{rng.integers(4)}",
                "h2d" if rng.random() < 0.5 else "d2h",
                int(rng.integers(1, MIB)),
                kind=HostMemoryKind.PAGEABLE,
                start=float(rng.random() * 1e-3),
            )
            assert grant.duration >= grant.dedicated - 1e-18

    def test_switched_peer_copies_share_the_fabric(self):
        topo = resolve_topology("switched", [GTX_280] * 4)
        engine = TransferEngine(topo)
        grants = engine.transfer_batch(
            [
                TransferRequest(
                    device="gpu0", direction="p2p", peer="gpu1", nbytes=4 * MIB, kind=None
                ),
                TransferRequest(
                    device="gpu2", direction="p2p", peer="gpu3", nbytes=4 * MIB, kind=None
                ),
            ]
        )
        for grant in grants:
            assert grant.stall > 0.0
        # ... but not with host traffic, which has its own uplink.
        host = engine.transfer("gpu0", "h2d", MIB)
        assert host.stall == 0.0


class TestAccounting:
    def test_bytes_conserved_per_link_regardless_of_arbitration(self):
        requests = [
            TransferRequest(device=f"gpu{i % 4}", direction="h2d", nbytes=(i + 1) * 1000)
            for i in range(8)
        ]
        for topo in (dedicated4(), shared4()):
            engine = TransferEngine(topo)
            engine.transfer_batch(requests)
            total = sum(request.nbytes for request in requests)
            per_device = {
                key: sum(r.nbytes for r in requests if r.device == key)
                for key in topo.device_keys
            }
            for key, expected in per_device.items():
                assert engine.link_bytes(f"pcie:{key}") == expected
            if topo.uplink is not None:
                assert engine.uplink_bytes() == total
                assert sum(
                    engine.link_bytes(f"pcie:{key}") for key in topo.device_keys
                ) == engine.uplink_bytes()

    def test_uplink_busy_is_interval_union(self):
        engine = TransferEngine(shared4())
        a = engine.transfer("gpu0", "h2d", MIB)
        engine.transfer("gpu1", "h2d", MIB, start=a.end + 5.0)
        # Two disjoint windows: busy time is their summed durations.
        assert engine.uplink_busy() == pytest.approx(a.duration * 2)
        overlapped = TransferEngine(shared4())
        overlapped.transfer_batch(
            [
                TransferRequest(device=f"gpu{i}", direction="h2d", nbytes=MIB)
                for i in range(2)
            ]
        )
        # Full overlap: the union is one (stretched) window, not the sum.
        assert overlapped.uplink_busy() < 2 * a.duration * 2

    def test_stall_attribution_and_reset(self):
        engine = TransferEngine(shared4())
        engine.transfer_batch(
            [
                TransferRequest(device=f"gpu{i}", direction="h2d", nbytes=4 * MIB)
                for i in range(4)
            ]
        )
        assert engine.total_stall > 0.0
        assert set(engine.stall_by_device) == {f"gpu{i}" for i in range(4)}
        assert engine.link_transfers("uplink") == 4
        engine.reset()
        assert engine.total_stall == 0.0
        assert engine.transfers == 0
        assert engine.uplink_bytes() == 0.0
        assert not engine.timeline.streams

    def test_format_interconnect_lists_busy_links(self):
        engine = TransferEngine(shared4())
        engine.transfer("gpu0", "h2d", MIB, label="resident")
        text = format_interconnect(engine)
        assert "topology shared" in text
        assert "uplink" in text and "(shared)" in text
        assert "contention stall" in text

    def test_timeline_report_renders_uplink_lane(self):
        pool = MultiGPU([GTX_280] * 2, topology="shared")
        scheduler = DeviceScheduler(pool.contexts, engine=pool.engine)
        scheduler.upload_batch([(0, "a", np.zeros(256)), (1, "b", np.zeros(256))])
        report = timeline_report(scheduler)
        assert "interconnect:uplink" in report
        assert "contention stall" in report
        # The engine alone renders the same lanes.
        assert "interconnect:uplink" in timeline_report(pool.engine)


class TestContextIntegration:
    def test_pool_contexts_share_one_engine(self):
        pool = MultiGPU([GTX_280] * 3, topology="shared")
        engines = {id(ctx.engine) for ctx in pool.contexts}
        assert len(engines) == 1
        assert pool.contexts[0].device_key == "gpu0"
        assert pool.contexts[2].device_key == "gpu2"

    def test_standalone_context_gets_private_dedicated_engine(self):
        ctx = GPUContext(GTX_280)
        assert ctx.engine.topology.name == "dedicated"
        other = GPUContext(GTX_280)
        assert ctx.engine is not other.engine

    def test_sync_transfers_route_through_engine(self):
        ctx = GPUContext(GTX_280, topology="shared")
        ctx.to_device("a", np.zeros(1024, dtype=np.float64))
        ctx.to_host("a")
        assert ctx.engine.transfers == 2
        assert ctx.engine.uplink_bytes() == 2 * 8 * 1024
        assert ctx.engine.link_bytes("pcie:gpu0", "h2d") == 8 * 1024
        assert ctx.engine.link_bytes("pcie:gpu0", "d2h") == 8 * 1024

    def test_context_reset_rewinds_engine(self):
        ctx = GPUContext(GTX_280, topology="shared")
        ctx.to_device("a", np.zeros(8))
        ctx.reset()
        assert ctx.engine.transfers == 0

    def test_peer_copy_uses_topology_route_on_shared_engine(self):
        pool = MultiGPU([GTX_280, GTX_280], topology="nvlink")
        src, dst = pool.contexts
        event = src.copy_peer_async(dst, "pkt", np.zeros(1 << 16, dtype=np.uint8))
        # NVLink edge: much faster than the legacy PCIe peer pricing.
        legacy = src.timing.peer_transfer_time(1 << 16, dst.device)
        assert event.time < legacy
        assert pool.engine.link_bytes("nvlink:gpu0-gpu1") == 1 << 16

    def test_incapable_peer_has_no_route_on_shared_engine(self):
        pool = MultiGPU([GTX_280, GTX_8800], topology="shared")
        src, dst = pool.contexts
        assert not src.can_access_peer(dst)
        with pytest.raises(RuntimeError):
            src.copy_peer_async(dst, "x", np.zeros(8, dtype=np.uint8))
