"""Lazy array-backed interval accounting vs legacy eager objects.

The hot-loop rework replaced per-operation :class:`StreamInterval` objects
with parallel columns plus O(1) counters; interval objects are now built
only when a report asks.  These randomized property tests shadow-record
every operation the eager way and assert the lazily-materialized records
are identical — same values, same order, bit-identical floats — across all
four interconnect topology presets, and that the O(1) counters
(``num_intervals``, ``busy_time``) always agree with a recomputation over
the materialized objects.
"""

import numpy as np
import pytest

from repro.gpu import (
    GTX_280,
    DeviceScheduler,
    GPUContext,
    HostMemoryKind,
    TransferEngine,
    TransferRequest,
    resolve_topology,
)
from repro.gpu.scheduler import merge_timelines
from repro.gpu.streams import Stream, StreamInterval, Timeline

PRESETS = ("dedicated", "shared", "switched", "nvlink")
DEVICES = 3


class EagerShadow:
    """The legacy recording scheme: one interval object per operation."""

    def __init__(self):
        self.streams: dict[str, list[StreamInterval]] = {}
        self.busy: dict[str, float] = {}
        self.cursor: dict[str, float] = {}

    def record(self, stream: str, kind: str, name: str, start: float, end: float):
        self.streams.setdefault(stream, []).append(
            StreamInterval(stream=stream, kind=kind, name=name, start=start, end=end)
        )
        # Accumulate op-by-op, exactly like Stream.append_interval.
        self.busy[stream] = self.busy.get(stream, 0.0) + (end - start)
        self.cursor[stream] = max(self.cursor.get(stream, 0.0), end)


def random_requests(rng, engine, count: int) -> list[TransferRequest]:
    keys = engine.topology.device_keys
    requests = []
    for _ in range(count):
        device = keys[int(rng.integers(len(keys)))]
        roll = rng.random()
        peer = keys[int(rng.integers(len(keys)))]
        if roll < 0.2 and peer != device and engine.has_peer_route(device, peer):
            direction, kind = "p2p", None
        else:
            direction = "h2d" if rng.random() < 0.5 else "d2h"
            kind = (
                HostMemoryKind.PINNED
                if rng.random() < 0.3
                else HostMemoryKind.PAGEABLE
            )
            peer = None
        requests.append(
            TransferRequest(
                device=device,
                direction=direction,
                nbytes=float(rng.integers(1, 1 << 20)),
                kind=kind,
                start=float(rng.random() * 1e-2),
                peer=peer,
                label="pkt" if rng.random() < 0.5 else "",
            )
        )
    return requests


@pytest.mark.parametrize("preset", PRESETS)
def test_engine_timeline_matches_eager_shadow(preset):
    """TransferEngine's lane records equal a per-grant eager re-recording."""
    rng = np.random.default_rng(hash(preset) % (2**32))
    engine = TransferEngine(resolve_topology(preset, [GTX_280] * DEVICES))
    shadow = EagerShadow()
    for _ in range(12):
        batch = random_requests(rng, engine, int(rng.integers(1, 6)))
        grants = engine.transfer_batch(batch)
        for grant in grants:
            request = grant.request
            for link_name in grant.links:
                if not engine.topology.links[link_name].shared:
                    continue
                shadow.record(
                    link_name,
                    request.direction,
                    request.label or f"{request.device}:{request.direction}",
                    grant.start,
                    grant.end,
                )

    timeline = engine.timeline
    assert set(timeline.streams) == set(shadow.streams)
    if preset == "dedicated":
        # No shared links: the lane timeline must stay empty.
        assert timeline.num_intervals == 0
        return
    for name, stream in timeline.streams.items():
        materialized = stream.intervals
        assert materialized == shadow.streams[name]  # order + exact floats
        assert stream.num_intervals == len(shadow.streams[name])
        assert stream.busy_time == shadow.busy[name]  # same accumulation order
        assert stream.cursor == shadow.cursor[name]
    assert timeline.num_intervals == sum(len(v) for v in shadow.streams.values())
    merged = timeline.intervals()
    assert merged == sorted(merged, key=lambda i: (i.start, i.stream))


def test_stream_schedule_lazy_records_identical():
    """Stream.schedule's returned objects equal the lazy snapshot, in order."""
    rng = np.random.default_rng(7)
    stream = Stream("compute")
    eager = []
    busy = 0.0
    for index in range(200):
        duration = float(rng.random() * 1e-3)
        not_before = float(rng.random() * 1e-2)
        interval = stream.schedule("kernel", f"op{index}", duration,
                                   not_before=not_before)
        eager.append(interval)
        busy += interval.end - interval.start
    snapshot = stream.intervals
    assert snapshot == eager
    assert stream.num_intervals == 200
    assert stream.busy_time == busy
    assert stream.cursor == eager[-1].end
    # The snapshot is a copy: mutating it must not alter the records.
    snapshot.pop()
    assert stream.num_intervals == 200


def test_intervals_setter_round_trips():
    rng = np.random.default_rng(11)
    stream = Stream("h2d")
    for index in range(50):
        stream.schedule("h2d", f"u{index}", float(rng.random() * 1e-4))
    records = stream.intervals
    rebuilt = Stream("h2d")
    rebuilt.intervals = records
    assert rebuilt.intervals == records
    assert rebuilt.num_intervals == stream.num_intervals
    assert rebuilt.busy_time == stream.busy_time


def test_merge_timelines_copies_columns_exactly():
    rng = np.random.default_rng(13)
    timelines = {}
    for prefix in ("gpu0", "gpu1"):
        timeline = Timeline()
        for name in ("h2d", "compute"):
            stream = timeline.stream(name)
            for index in range(30):
                stream.schedule(name, f"{prefix}-{index}", float(rng.random() * 1e-3))
        timelines[prefix] = timeline
    merged = merge_timelines(timelines)
    for prefix, timeline in timelines.items():
        for name, stream in timeline.streams.items():
            view = merged.streams[f"{prefix}:{name}"]
            assert view.cursor == stream.cursor
            assert view.num_intervals == stream.num_intervals
            assert view.busy_time == stream.busy_time  # per-op accumulation
            assert [
                (i.kind, i.name, i.start, i.end) for i in view.intervals
            ] == [(i.kind, i.name, i.start, i.end) for i in stream.intervals]
    assert merged.num_intervals == sum(
        t.num_intervals for t in timelines.values()
    )


@pytest.mark.parametrize("preset", PRESETS)
def test_scheduler_workload_counters_consistent(preset):
    """End-to-end pool workload: O(1) counters agree with materialization."""
    rng = np.random.default_rng(hash(("pool", preset)) % (2**32))
    engine = TransferEngine(resolve_topology(preset, [GTX_280] * DEVICES))
    contexts = [
        GPUContext(GTX_280, engine=engine, device_key=f"gpu{i}")
        for i in range(DEVICES)
    ]
    scheduler = DeviceScheduler(contexts)
    for step in range(6):
        for i in range(DEVICES):
            upload = scheduler.upload(i, f"x{step}", np.zeros(int(rng.integers(64, 4096))))
            scheduler.download(i, f"x{step}", wait_for=[upload])
        if preset != "dedicated" and scheduler.can_route_peer(0, 1):
            scheduler.route_peer(0, 1, f"pkt{step}", np.zeros(256, dtype=np.uint8))
        scheduler.host_op("gather", f"g{step}", 1e-6)

    for context in contexts:
        timeline = context.timeline
        records = timeline.intervals()
        assert timeline.num_intervals == len(records)
        for stream in timeline.streams.values():
            materialized = stream.intervals
            assert stream.num_intervals == len(materialized)
            total = 0.0
            for interval in materialized:
                total += interval.duration
            assert stream.busy_time == total
            if materialized:
                assert stream.cursor >= max(i.end for i in materialized)
    merged = scheduler.merged_timeline()
    assert merged.num_intervals == (
        sum(ctx.timeline.num_intervals for ctx in contexts)
        + scheduler.host_timeline.num_intervals
        + engine.timeline.num_intervals
    )
