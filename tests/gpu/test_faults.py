"""Fault plans, flaky-transfer injection and the modern device presets."""

import numpy as np
import pytest

from repro.gpu import (
    A100_SXM,
    DEVICE_PRESETS,
    GTX_280,
    TESLA_V100,
    FaultEvent,
    FaultPlan,
    GPUContext,
    InterconnectTopology,
    TransferEngine,
)


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse("flaky:2@5, fail:1@40, join:2@80, kill-worker:0@3")
        assert len(plan) == 4
        assert str(FaultPlan.parse(str(plan))) == str(plan)

    def test_events_sorted_by_iteration(self):
        plan = FaultPlan.parse("join:2@80,fail:1@40")
        assert [event.at for event in plan.events] == [40, 80]

    def test_due_matches_exactly(self):
        plan = FaultPlan.parse("fail:1@40,join:1@80,flaky:3@40")
        due = plan.due(40)
        assert {event.kind for event in due} == {"fail", "flaky"}
        assert plan.due(41) == ()

    def test_device_events_subset(self):
        plan = FaultPlan.parse("flaky:2@5,fail:1@40,join:2@80")
        assert [event.kind for event in plan.device_events()] == ["fail", "join"]

    def test_empty_string_is_empty_plan(self):
        assert len(FaultPlan.parse("")) == 0

    @pytest.mark.parametrize(
        "text",
        ["fail@3", "explode:1@3", "fail:1", "fail:-1@3", "fail:1@-3", "fail:x@3"],
    )
    def test_bad_terms_rejected(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent("explode", 0, 0)
        with pytest.raises(ValueError):
            FaultEvent("fail", 0, -1)


class TestFlakyTransfers:
    def _context(self):
        topology = InterconnectTopology.dedicated([GTX_280])
        engine = TransferEngine(topology)
        return GPUContext(GTX_280, engine=engine, device_key="gpu0")

    def test_retry_penalty_slows_transfer_only(self):
        clean = self._context()
        clean.to_device("a", np.zeros(1 << 16, dtype=np.int8))
        baseline = clean.timeline.elapsed

        ctx = self._context()
        ctx.engine.inject_transfer_faults(retries=2, backoff=1e-3)
        ctx.to_device("a", np.zeros(1 << 16, dtype=np.int8))
        assert ctx.engine.retried_transfers == 2  # two retry attempts tallied
        assert ctx.engine.retry_time > 0.0
        assert ctx.timeline.elapsed == pytest.approx(
            baseline + ctx.engine.retry_time
        )
        # The fault is consumed: the next transfer prices clean.
        before = ctx.engine.retry_time
        ctx.to_device("b", np.zeros(1 << 16, dtype=np.int8))
        assert ctx.engine.retry_time == before

    def test_stall_counters_stay_pure_contention(self):
        ctx = self._context()
        ctx.engine.inject_transfer_faults(retries=3)
        ctx.to_device("a", np.zeros(1 << 16, dtype=np.int8))
        # A dedicated, uncontended link: the retry penalty must not leak
        # into the arbitration-stall accounting.
        assert ctx.engine.total_stall == 0.0

    def test_multiple_armed_faults_consumed_in_order(self):
        ctx = self._context()
        ctx.engine.inject_transfer_faults(count=2, retries=1)
        ctx.to_device("a", np.zeros(1 << 10, dtype=np.int8))
        ctx.to_device("b", np.zeros(1 << 10, dtype=np.int8))
        ctx.to_device("c", np.zeros(1 << 10, dtype=np.int8))
        assert ctx.engine.retried_transfers == 2

    def test_validation(self):
        ctx = self._context()
        with pytest.raises(ValueError):
            ctx.engine.inject_transfer_faults(count=0)
        with pytest.raises(ValueError):
            ctx.engine.inject_transfer_faults(retries=0)
        with pytest.raises(ValueError):
            ctx.engine.inject_transfer_faults(backoff=-1.0)

    def test_reset_clears_pending_faults(self):
        ctx = self._context()
        ctx.engine.inject_transfer_faults(count=3, retries=2)
        ctx.engine.reset()
        ctx.to_device("a", np.zeros(1 << 10, dtype=np.int8))
        assert ctx.engine.retried_transfers == 0


class TestModernPresets:
    def test_presets_registered(self):
        assert DEVICE_PRESETS["v100"] is TESLA_V100
        assert DEVICE_PRESETS["teslav100"] is TESLA_V100
        assert DEVICE_PRESETS["a100"] is A100_SXM
        assert DEVICE_PRESETS["a100sxm"] is A100_SXM

    def test_nvlink_class_peer_links(self):
        # Both presets model NVLink-generation peer fabric: far faster than
        # the G80/GT200-era PCIe peer path, with the A100 a generation ahead.
        assert TESLA_V100.p2p_capable and A100_SXM.p2p_capable
        assert TESLA_V100.p2p_bandwidth > GTX_280.pcie_bandwidth
        assert A100_SXM.p2p_bandwidth > TESLA_V100.p2p_bandwidth
        assert A100_SXM.p2p_latency < TESLA_V100.p2p_latency

    def test_presets_outcompute_the_paper_era(self):
        assert TESLA_V100.peak_flops > GTX_280.peak_flops
        assert A100_SXM.peak_flops > TESLA_V100.peak_flops
        assert A100_SXM.mem_bandwidth > TESLA_V100.mem_bandwidth > GTX_280.mem_bandwidth
