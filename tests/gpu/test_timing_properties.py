"""Additional properties of the device specs, occupancy calculator and timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    GTX_280,
    GPUTimingModel,
    HostTimingModel,
    KernelCostProfile,
    XEON_3GHZ,
    grid_for,
    occupancy,
)


class TestOccupancyNumbers:
    def test_full_occupancy_block_sizes(self):
        # On the GTX 280 (1024 resident threads/SM, 8 blocks/SM) blocks of
        # 128, 256 and 512 threads can all reach 100% theoretical occupancy.
        for block in (128, 256, 512):
            occ = occupancy(GTX_280, grid_for(10**6, block))
            assert occ.occupancy == 1.0, block

    def test_small_blocks_are_block_limited(self):
        # 32-thread blocks: at most 8 resident blocks = 256 threads of 1024.
        occ = occupancy(GTX_280, grid_for(10**6, 32))
        assert occ.limiter == "blocks"
        assert occ.occupancy == pytest.approx(0.25)

    def test_partial_last_block_counts_whole_warps(self):
        occ = occupancy(GTX_280, grid_for(100, 96))
        assert occ.blocks_per_mp >= 1
        assert occ.warps_per_mp >= 3

    @settings(max_examples=60, deadline=None)
    @given(
        threads=st.integers(min_value=1, max_value=2_000_000),
        block=st.sampled_from([32, 64, 128, 192, 256, 384, 512]),
    )
    def test_occupancy_is_always_within_bounds(self, threads, block):
        occ = occupancy(GTX_280, grid_for(threads, block))
        assert 0.0 <= occ.occupancy <= 1.0
        assert 0.0 <= occ.active_warps_per_mp <= GTX_280.max_warps_per_mp


class TestTimingModelProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        flops=st.floats(min_value=1, max_value=1e6),
        gmem=st.floats(min_value=1, max_value=1e6),
        threads=st.integers(min_value=1, max_value=10**6),
    )
    def test_kernel_time_is_positive_and_bounded_below_by_overhead(self, flops, gmem, threads):
        model = GPUTimingModel(GTX_280)
        t = model.kernel_time(grid_for(threads, 256), KernelCostProfile(flops, gmem),
                              active_threads=threads)
        assert t.kernel_time > 0
        assert t.total_time >= GTX_280.kernel_launch_overhead

    def test_kernel_time_monotone_in_work(self):
        model = GPUTimingModel(GTX_280)
        cfg = grid_for(10**5, 256)
        base = model.kernel_time(cfg, KernelCostProfile(flops=100, gmem_bytes=100))
        more_flops = model.kernel_time(cfg, KernelCostProfile(flops=1000, gmem_bytes=100))
        more_bytes = model.kernel_time(cfg, KernelCostProfile(flops=100, gmem_bytes=1000))
        assert more_flops.kernel_time >= base.kernel_time
        assert more_bytes.kernel_time >= base.kernel_time

    def test_idle_padding_threads_do_not_add_work(self):
        model = GPUTimingModel(GTX_280)
        cfg = grid_for(1000, 256)  # 1024 threads launched
        full = model.kernel_time(cfg, KernelCostProfile(1000, 100), active_threads=1024)
        active = model.kernel_time(cfg, KernelCostProfile(1000, 100), active_threads=1000)
        assert active.kernel_time < full.kernel_time

    def test_zero_threads_costs_only_overhead(self):
        model = GPUTimingModel(GTX_280)
        t = model.kernel_time(grid_for(64, 64), KernelCostProfile(100, 100), active_threads=0)
        assert t.kernel_time == 0.0
        assert t.total_time == GTX_280.kernel_launch_overhead

    def test_unschedulable_kernel_raises(self):
        model = GPUTimingModel(GTX_280)
        with pytest.raises(ValueError):
            model.kernel_time(grid_for(1000, 256),
                              KernelCostProfile(1, 1, smem_bytes=10**6))

    def test_custom_latency_hiding_override(self):
        lenient = GPUTimingModel(GTX_280, latency_hiding_warps=1.0)
        strict = GPUTimingModel(GTX_280, latency_hiding_warps=32.0)
        cfg = grid_for(256, 256)  # one block -> low occupancy
        cost = KernelCostProfile(flops=10, gmem_bytes=4000)
        assert lenient.kernel_time(cfg, cost).memory_time < strict.kernel_time(cfg, cost).memory_time


class TestHostModelProperties:
    def test_memory_bound_host_workload(self):
        host = HostTimingModel(XEON_3GHZ)
        # Tiny arithmetic, huge traffic: the memory term must dominate.
        t = host.evaluation_time(total_flops=1.0, total_bytes=1e9)
        assert t == pytest.approx(1e9 / XEON_3GHZ.sustained_bandwidth)

    def test_cores_capped_at_host_core_count(self):
        a = HostTimingModel(XEON_3GHZ, cores_used=8)
        b = HostTimingModel(XEON_3GHZ, cores_used=64)
        assert a.evaluation_time(1e9) == b.evaluation_time(1e9)

    @settings(max_examples=50, deadline=None)
    @given(flops=st.floats(min_value=0, max_value=1e12))
    def test_host_time_scales_linearly(self, flops):
        host = HostTimingModel(XEON_3GHZ)
        assert host.evaluation_time(2 * flops) == pytest.approx(2 * host.evaluation_time(flops))
