"""Tests for kernel execution, occupancy, the timing model and multi-GPU pooling."""

import numpy as np
import pytest

from repro.gpu import (
    GTX_280,
    ExecutionMode,
    GPUContext,
    GPUTimingModel,
    HostTimingModel,
    Kernel,
    KernelCostProfile,
    MultiGPU,
    XEON_3GHZ,
    grid_for,
    occupancy,
    partition_range,
)


def make_square_kernel():
    """A toy kernel: out[tid] = tid**2 (per-thread and vectorized bodies)."""

    def thread_fn(ctx, out, n):
        tid = ctx.global_id
        if tid < n:
            out[tid] = tid * tid

    def vectorized_fn(tids, out, n):
        out[tids] = tids * tids

    return Kernel(
        "square",
        thread_fn=thread_fn,
        vectorized_fn=vectorized_fn,
        cost=KernelCostProfile(flops=2, gmem_bytes=8),
    )


class TestKernelExecution:
    def test_vectorized_and_per_thread_agree(self):
        kernel = make_square_kernel()
        n = 1000
        cfg = kernel.launch_config(n, block_size=128)
        out_vec = np.zeros(n, dtype=np.int64)
        out_thr = np.zeros(n, dtype=np.int64)
        kernel.execute(cfg, (out_vec, n), active_threads=n, mode=ExecutionMode.VECTORIZED)
        kernel.execute(cfg, (out_thr, n), active_threads=n, mode=ExecutionMode.PER_THREAD)
        expected = np.arange(n, dtype=np.int64) ** 2
        assert np.array_equal(out_vec, expected)
        assert np.array_equal(out_thr, expected)

    def test_bounds_check_guards_padding_threads(self):
        # 73 active threads in a 256-thread block: the padding threads must
        # not write outside the logical range.
        kernel = make_square_kernel()
        n = 73
        cfg = kernel.launch_config(n)
        assert cfg.total_threads == 256
        out = np.zeros(n, dtype=np.int64)
        kernel.execute(cfg, (out, n), active_threads=n, mode=ExecutionMode.PER_THREAD)
        assert np.array_equal(out, np.arange(n) ** 2)

    def test_kernel_requires_an_implementation(self):
        with pytest.raises(ValueError):
            Kernel("empty", cost=KernelCostProfile(1, 1))

    def test_missing_backend_raises(self):
        kernel = Kernel(
            "vec-only",
            vectorized_fn=lambda tids, out: None,
            cost=KernelCostProfile(1, 1),
        )
        cfg = kernel.launch_config(10)
        with pytest.raises(ValueError):
            kernel.execute(cfg, (np.zeros(10),), mode=ExecutionMode.PER_THREAD)


class TestOccupancy:
    def test_full_occupancy_for_large_launch(self):
        cfg = grid_for(100_000, 256)
        occ = occupancy(GTX_280, cfg)
        assert occ.occupancy == 1.0
        assert occ.active_warps_per_mp == GTX_280.max_threads_per_mp / GTX_280.warp_size

    def test_tiny_launch_is_latency_bound(self):
        # The paper's 1-Hamming kernel for n=73: one block of 256 threads.
        cfg = grid_for(73, 256)
        occ = occupancy(GTX_280, cfg)
        assert occ.limiter == "grid"
        assert occ.active_warps_per_mp < 1.0
        assert occ.is_latency_bound

    def test_block_size_above_limit_rejected(self):
        cfg = grid_for(10_000, 512)
        occupancy(GTX_280, cfg)  # 512 is allowed
        with pytest.raises(ValueError):
            occupancy(GTX_280, grid_for(10_000, 1024))

    def test_shared_memory_limits_residency(self):
        cfg = grid_for(100_000, 256)
        occ = occupancy(GTX_280, cfg, shared_mem_per_block=8192)
        assert occ.blocks_per_mp == 2
        assert occ.limiter == "shared"

    def test_register_pressure_limits_residency(self):
        cfg = grid_for(100_000, 256)
        occ = occupancy(GTX_280, cfg, registers_per_thread=64)
        assert occ.limiter == "registers"
        assert occ.occupancy < 1.0

    def test_unschedulable_launch_reports_zero(self):
        cfg = grid_for(1000, 256)
        occ = occupancy(GTX_280, cfg, shared_mem_per_block=10**6)
        assert occ.blocks_per_mp == 0 and occ.occupancy == 0.0


class TestTimingModel:
    def test_more_threads_take_longer_at_full_occupancy(self):
        model = GPUTimingModel(GTX_280)
        cost = KernelCostProfile(flops=1000, gmem_bytes=400)
        small = model.kernel_time(grid_for(100_000, 256), cost, active_threads=100_000)
        large = model.kernel_time(grid_for(1_000_000, 256), cost, active_threads=1_000_000)
        assert large.kernel_time > small.kernel_time

    def test_latency_bound_small_launch_is_inefficient(self):
        # Per-thread time should be much worse for a 73-thread launch than
        # for a one-million-thread launch (latency hiding).
        model = GPUTimingModel(GTX_280)
        cost = KernelCostProfile(flops=500, gmem_bytes=600)
        tiny = model.kernel_time(grid_for(73, 256), cost, active_threads=73)
        huge = model.kernel_time(grid_for(1_000_000, 256), cost, active_threads=1_000_000)
        per_thread_tiny = tiny.kernel_time / 73
        per_thread_huge = huge.kernel_time / 1_000_000
        assert per_thread_tiny > 5 * per_thread_huge

    def test_launch_overhead_always_included(self):
        model = GPUTimingModel(GTX_280)
        cost = KernelCostProfile(flops=1, gmem_bytes=1)
        t = model.kernel_time(grid_for(1, 32), cost, active_threads=1)
        assert t.total_time >= GTX_280.kernel_launch_overhead

    def test_memory_vs_compute_bound_classification(self):
        model = GPUTimingModel(GTX_280)
        cfg = grid_for(1_000_000, 256)
        mem_heavy = model.kernel_time(cfg, KernelCostProfile(flops=1, gmem_bytes=10_000))
        compute_heavy = model.kernel_time(cfg, KernelCostProfile(flops=100_000, gmem_bytes=4))
        assert mem_heavy.bound == "memory"
        assert compute_heavy.bound == "compute"

    def test_transfer_time_has_latency_floor(self):
        model = GPUTimingModel(GTX_280)
        assert model.transfer_time(0) == pytest.approx(GTX_280.pcie_latency)
        assert model.transfer_time(10**9) > model.transfer_time(10**3)
        with pytest.raises(ValueError):
            model.transfer_time(-1)

    def test_reduction_time_scales(self):
        model = GPUTimingModel(GTX_280)
        assert model.reduction_time(10**7) > model.reduction_time(10**3)
        with pytest.raises(ValueError):
            model.reduction_time(-1)

    def test_host_model_scales_with_work(self):
        host = HostTimingModel(XEON_3GHZ)
        assert host.evaluation_time(2e9) == pytest.approx(2 * host.evaluation_time(1e9))
        with pytest.raises(ValueError):
            host.evaluation_time(-1.0)

    def test_host_multicore_ablation(self):
        single = HostTimingModel(XEON_3GHZ, cores_used=1)
        multi = HostTimingModel(XEON_3GHZ, cores_used=8)
        assert multi.evaluation_time(1e10) < single.evaluation_time(1e10)


class TestGPUContext:
    def test_launch_accumulates_time_and_results(self):
        ctx = GPUContext(GTX_280)
        kernel = make_square_kernel()
        out = np.zeros(500, dtype=np.int64)
        record = ctx.launch(kernel, 500, (out, 500))
        assert np.array_equal(out, np.arange(500) ** 2)
        assert ctx.stats.kernel_launches == 1
        assert ctx.stats.kernel_time == pytest.approx(record.time.total_time)

    def test_transfers_are_timed_and_counted(self):
        ctx = GPUContext(GTX_280)
        data = np.random.default_rng(0).random(1000)
        ctx.to_device("data", data)
        back = ctx.to_host("data")
        assert np.array_equal(back, data)
        assert ctx.stats.h2d_bytes == data.nbytes
        assert ctx.stats.d2h_bytes == data.nbytes
        assert ctx.stats.transfer_time > 0

    def test_invalid_launch_sizes(self):
        ctx = GPUContext(GTX_280)
        kernel = make_square_kernel()
        with pytest.raises(ValueError):
            ctx.launch(kernel, 0, (np.zeros(1), 1))
        cfg = grid_for(32, 32)
        with pytest.raises(ValueError):
            ctx.launch(kernel, 100, (np.zeros(100), 100), config=cfg)

    def test_launch_records_opt_in(self):
        ctx = GPUContext(GTX_280, keep_launch_records=True)
        kernel = make_square_kernel()
        out = np.zeros(10, dtype=np.int64)
        ctx.launch(kernel, 10, (out, 10))
        assert len(ctx.stats.launch_records) == 1

    def test_reset(self):
        ctx = GPUContext(GTX_280)
        kernel = make_square_kernel()
        out = np.zeros(10, dtype=np.int64)
        ctx.launch(kernel, 10, (out, 10))
        ctx.reset()
        assert ctx.stats.kernel_launches == 0
        assert ctx.stats.total_time == 0.0


class TestMultiGPU:
    def test_partition_range_is_balanced_and_covering(self):
        parts = partition_range(103, 4)
        assert len(parts) == 4
        sizes = [p.size for p in parts]
        assert sum(sizes) == 103
        assert max(sizes) - min(sizes) <= 1
        # contiguous and ordered
        assert parts[0].start == 0 and parts[-1].stop == 103
        for a, b in zip(parts, parts[1:]):
            assert a.stop == b.start

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            partition_range(-1, 2)
        with pytest.raises(ValueError):
            partition_range(10, 0)

    def test_multigpu_construction(self):
        pool = MultiGPU(3)
        assert pool.num_devices == 3
        with pytest.raises(ValueError):
            MultiGPU(0)
        with pytest.raises(ValueError):
            MultiGPU([])

    def test_elapsed_time_is_max_over_devices(self):
        pool = MultiGPU(2)
        kernel = make_square_kernel()
        out = np.zeros(1000, dtype=np.int64)
        # Give the first device twice the work.
        pool.contexts[0].launch(kernel, 1000, (out, 1000))
        pool.contexts[0].launch(kernel, 1000, (out, 1000))
        pool.contexts[1].launch(kernel, 1000, (out, 1000))
        assert pool.elapsed_parallel_time == pytest.approx(pool.contexts[0].stats.total_time)
        assert pool.total_device_time == pytest.approx(
            pool.contexts[0].stats.total_time + pool.contexts[1].stats.total_time
        )
        pool.reset()
        assert pool.elapsed_parallel_time == 0.0
