"""Tests for the thread hierarchy, device presets and memory manager."""

import numpy as np
import pytest

from repro.gpu import (
    DEFAULT_BLOCK_SIZE,
    GTX_280,
    GTX_8800,
    XEON_3GHZ,
    DeviceSpec,
    Dim3,
    MemoryManager,
    MemorySpace,
    OutOfDeviceMemory,
    get_device,
    grid_for,
)


class TestDeviceSpecs:
    def test_gtx280_matches_paper_description(self):
        # The paper states 32 multiprocessors for its GTX 280.
        assert GTX_280.multiprocessors == 32
        assert GTX_280.warp_size == 32
        assert GTX_280.max_threads_per_block == 512

    def test_peak_flops_formula(self):
        assert GTX_280.peak_flops == pytest.approx(2 * 32 * 8 * 1.296e9)
        assert GTX_280.sustained_flops < GTX_280.peak_flops

    def test_g80_has_stricter_memory_model(self):
        # "GTX 280 get better global memory performance" than the G80 series.
        assert GTX_280.sustained_bandwidth > GTX_8800.sustained_bandwidth

    def test_warps_to_hide_latency_is_positive(self):
        assert GTX_280.warps_to_hide_latency > 1

    def test_with_overrides_returns_new_spec(self):
        tweaked = GTX_280.with_overrides(multiprocessors=16)
        assert tweaked.multiprocessors == 16
        assert GTX_280.multiprocessors == 32
        assert isinstance(tweaked, DeviceSpec)

    def test_get_device_lookup(self):
        assert get_device("GTX 280") is GTX_280
        assert get_device("gtx-280") is GTX_280
        with pytest.raises(KeyError):
            get_device("does-not-exist")

    def test_host_spec(self):
        assert XEON_3GHZ.cores == 8
        assert XEON_3GHZ.with_overrides(cores=4).cores == 4


class TestDim3AndGrid:
    def test_dim3_size(self):
        assert Dim3(4).size == 4
        assert Dim3(4, 3).size == 12
        assert Dim3(4, 3, 2).size == 24
        assert tuple(Dim3(5, 6, 7)) == (5, 6, 7)

    def test_dim3_rejects_negative(self):
        with pytest.raises(ValueError):
            Dim3(-1)

    def test_launch_config_rejects_zero_extents(self):
        from repro.gpu import LaunchConfig

        with pytest.raises(ValueError):
            LaunchConfig(grid=Dim3(0), block=Dim3(32))
        with pytest.raises(ValueError):
            LaunchConfig(grid=Dim3(1), block=Dim3(0))

    def test_grid_for_exact_multiple(self):
        cfg = grid_for(1024, 256)
        assert cfg.num_blocks == 4
        assert cfg.threads_per_block == 256
        assert cfg.total_threads == 1024

    def test_grid_for_rounds_up(self):
        cfg = grid_for(1000, 256)
        assert cfg.num_blocks == 4
        assert cfg.total_threads == 1024

    def test_grid_for_small_neighborhood(self):
        # 1-Hamming on n=73: a single (partly idle) block.
        cfg = grid_for(73)
        assert cfg.threads_per_block == DEFAULT_BLOCK_SIZE
        assert cfg.num_blocks == 1

    def test_grid_for_spills_to_2d(self):
        # 3-Hamming on n=1517 needs ~581 million threads -> 2-D grid.
        total = 1517 * 1516 * 1515 // 6
        cfg = grid_for(total, 256)
        assert cfg.grid.y > 1
        assert cfg.total_threads >= total

    def test_grid_for_validation(self):
        with pytest.raises(ValueError):
            grid_for(0)
        with pytest.raises(ValueError):
            grid_for(10, 0)

    def test_global_ids_cover_launch(self):
        cfg = grid_for(100, 32)
        ids = cfg.global_ids()
        assert ids.shape == (cfg.total_threads,)
        assert ids[0] == 0 and ids[-1] == cfg.total_threads - 1

    def test_thread_indices_enumeration_matches_global_ids(self):
        cfg = grid_for(70, 32)
        ids = [ti.global_x for ti in cfg.thread_indices()]
        # Every global id appears exactly once.
        assert sorted(ids) == list(range(cfg.total_threads))


class TestMemoryManager:
    def test_alloc_and_capacity(self):
        mm = MemoryManager(capacity_bytes=1000)
        mm.alloc("a", (10,), np.float64)  # 80 bytes
        assert mm.allocated_bytes == 80
        with pytest.raises(OutOfDeviceMemory):
            mm.alloc("b", (200,), np.float64)

    def test_double_alloc_rejected(self):
        mm = MemoryManager(capacity_bytes=1000)
        mm.alloc("a", (4,), np.float32)
        with pytest.raises(ValueError):
            mm.alloc("a", (4,), np.float32)

    def test_free(self):
        mm = MemoryManager(capacity_bytes=1000)
        mm.alloc("a", (10,), np.float64)
        mm.free("a")
        assert mm.allocated_bytes == 0
        with pytest.raises(KeyError):
            mm.free("a")

    def test_to_device_roundtrip(self):
        mm = MemoryManager(capacity_bytes=10_000)
        host = np.arange(32, dtype=np.int32)
        mm.to_device("x", host)
        back = mm.to_host("x")
        assert np.array_equal(back, host)
        # copies are tracked
        assert mm.transfer_count("h2d") == 1
        assert mm.transfer_count("d2h") == 1
        assert mm.bytes_transferred("h2d") == host.nbytes

    def test_to_device_reuses_buffer(self):
        mm = MemoryManager(capacity_bytes=10_000)
        mm.to_device("x", np.zeros(8, dtype=np.float32))
        mm.to_device("x", np.ones(8, dtype=np.float32))
        assert mm.transfer_count("h2d") == 2
        assert np.array_equal(mm.to_host("x"), np.ones(8, dtype=np.float32))

    def test_copy_shape_mismatch(self):
        mm = MemoryManager(capacity_bytes=10_000)
        mm.to_device("x", np.zeros(8))
        with pytest.raises(ValueError):
            mm.get("x").copy_from_host(np.zeros(9))

    def test_shared_memory_not_counted_against_global_capacity(self):
        mm = MemoryManager(capacity_bytes=100)
        mm.alloc("tile", (64,), np.float64, space=MemorySpace.SHARED)
        assert mm.allocated_bytes == 0

    def test_reset_statistics(self):
        mm = MemoryManager(capacity_bytes=10_000)
        mm.to_device("x", np.zeros(8))
        mm.reset_statistics()
        assert mm.transfer_count() == 0
