"""Tests for the experiment harness (scales, experiment runner, tables, figures, reporting)."""

import numpy as np
import pytest

from repro.core import GPUEvaluator
from repro.harness import (
    PAPER,
    PAPER_REFERENCE,
    REDUCED,
    SMOKE,
    ExperimentRow,
    TrialRecord,
    figure_eight,
    format_experiment_table,
    format_figure8_series,
    format_time,
    get_scale,
    render_markdown_table,
    run_ppp_experiment,
    table_one,
)
from repro.problems.instances import PPPInstanceSpec


class TestScales:
    def test_get_scale_by_name_and_passthrough(self):
        assert get_scale("paper") is PAPER
        assert get_scale("SMOKE") is SMOKE
        assert get_scale(REDUCED) is REDUCED
        with pytest.raises(KeyError):
            get_scale("gigantic")

    def test_paper_scale_matches_protocol(self):
        assert PAPER.trials == 50
        assert [(s.m, s.n) for s in PAPER.table_instances] == [
            (73, 73), (81, 81), (101, 101), (101, 117)]
        # The paper's iteration cap is n(n-1)(n-2)/6 for every neighborhood.
        spec = PPPInstanceSpec(101, 117)
        assert PAPER.iteration_cap(spec, 1) == 260130
        assert PAPER.iteration_cap(spec, 3) == 260130
        assert PAPER.figure8_nominal_iterations == 10_000

    def test_smoke_scale_is_small(self):
        spec = SMOKE.table_instances[0]
        assert SMOKE.trials <= 5
        assert SMOKE.iteration_cap(spec, 3) <= 100


class TestRunExperiment:
    def test_row_aggregates(self):
        row = run_ppp_experiment((25, 25), 1, trials=3, max_iterations=50)
        assert row.num_trials == 3
        assert row.mean_iterations <= 50
        assert 0 <= row.successes <= 3
        assert row.cpu_time > 0 and row.gpu_time > 0
        assert row.acceleration == pytest.approx(row.cpu_time / row.gpu_time)
        d = row.as_dict()
        assert d["instance"] == "25 x 25" and d["order"] == 1

    def test_results_are_deterministic(self):
        a = run_ppp_experiment((25, 25), 2, trials=2, max_iterations=30)
        b = run_ppp_experiment((25, 25), 2, trials=2, max_iterations=30)
        assert a.mean_fitness == b.mean_fitness
        assert a.mean_iterations == b.mean_iterations

    def test_custom_evaluator_factory(self):
        row = run_ppp_experiment(
            (25, 25), 1, trials=1, max_iterations=20,
            evaluator_factory=lambda p, nb: GPUEvaluator(p, nb),
        )
        assert row.num_trials == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            run_ppp_experiment((25, 25), 0, trials=1, max_iterations=10)
        with pytest.raises(ValueError):
            run_ppp_experiment((25, 25), 1, trials=0, max_iterations=10)

    def test_empty_row_statistics_are_nan(self):
        row = ExperimentRow(instance=PPPInstanceSpec(5, 5), order=1)
        assert np.isnan(row.mean_fitness)
        assert np.isnan(row.std_fitness)


class TestTables:
    @pytest.fixture(scope="class")
    def smoke_tables(self):
        return {
            "I": table_one("smoke"),
            "III": __import__("repro.harness", fromlist=["table_three"]).table_three("smoke"),
        }

    def test_table_one_has_one_row_per_instance(self, smoke_tables):
        rows = smoke_tables["I"]
        assert len(rows) == len(SMOKE.table_instances)
        assert [r.order for r in rows] == [1] * len(rows)

    def test_larger_neighborhood_finds_more_solutions(self, smoke_tables):
        # The headline qualitative claim of the paper, at smoke scale.
        successes_1 = sum(r.successes for r in smoke_tables["I"])
        successes_3 = sum(r.successes for r in smoke_tables["III"])
        assert successes_3 >= successes_1

    def test_3hamming_accelerations_exceed_1hamming(self, smoke_tables):
        acc1 = np.mean([r.acceleration for r in smoke_tables["I"]])
        acc3 = np.mean([r.acceleration for r in smoke_tables["III"]])
        assert acc3 > acc1

    def test_paper_reference_is_complete(self):
        # 3 tables x 4 instances
        assert len(PAPER_REFERENCE) == 12
        assert PAPER_REFERENCE[("II", "73 x 73")]["acceleration"] == 9.9

    def test_formatting(self, smoke_tables):
        text = format_experiment_table(smoke_tables["I"], title="Table I", include_acceleration=False)
        assert "Table I" in text and "25 x 25" in text and "Acceleration" not in text
        text3 = format_experiment_table(smoke_tables["III"], title="Table III")
        assert "Acceleration" in text3


class TestFigure8:
    @pytest.fixture(scope="class")
    def points(self):
        return figure_eight("smoke", max_points=4)

    def test_point_metadata(self, points):
        assert len(points) == 4
        assert points[0].label == "101 x 117"
        assert points[0].nominal_iterations == 10_000
        assert all(p.cpu_time > 0 and p.gpu_time > 0 for p in points)
        d = points[0].as_dict()
        assert d["instance"] == "101 x 117"

    def test_acceleration_grows_with_instance_size(self, points):
        accelerations = [p.acceleration for p in points]
        assert accelerations == sorted(accelerations)

    def test_crossover_location_matches_paper(self, points):
        # GPU slower (or about even) on the smallest instance, clearly faster
        # by the third/fourth point — the crossover the paper locates around
        # 201 x 217.
        assert points[0].acceleration < 1.2
        assert points[-1].acceleration > 2.0

    def test_formatting(self, points):
        text = format_figure8_series(points, title="Figure 8")
        assert "Figure 8" in text and "101 x 117" in text


class TestReportingHelpers:
    def test_format_time_ranges(self):
        assert format_time(float("nan")) == "-"
        assert format_time(5e-4).endswith("us")
        assert format_time(0.25).endswith("ms")
        assert format_time(12.0).endswith("s")
        assert format_time(600).endswith("min")
        assert format_time(100_000).endswith("h")

    def test_render_markdown_table(self):
        text = render_markdown_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert len(lines) == 4
