"""Tests for result serialization and the ablation sweeps."""

import pytest

from repro.harness import (
    block_size_ablation,
    cpu_cores_ablation,
    device_ablation,
    figure_eight,
    load_rows,
    multi_gpu_ablation,
    points_to_json,
    rows_from_json,
    rows_to_json,
    run_ppp_experiment,
    save_figure8,
    save_rows,
    texture_ablation,
)


class TestResultSerialization:
    @pytest.fixture(scope="class")
    def row(self):
        return run_ppp_experiment((25, 25), 2, trials=2, max_iterations=20)

    def test_json_roundtrip_preserves_aggregates(self, row):
        restored = rows_from_json(rows_to_json([row]))[0]
        assert restored.as_dict() == row.as_dict()
        assert restored.instance == row.instance
        assert len(restored.trials) == len(row.trials)

    def test_save_and_load_files(self, row, tmp_path):
        path = save_rows([row], tmp_path / "rows.json")
        assert path.exists()
        loaded = load_rows(path)
        assert len(loaded) == 1
        assert loaded[0].mean_fitness == row.mean_fitness

    def test_figure8_serialization(self, tmp_path):
        points = figure_eight("smoke", max_points=2)
        payload = points_to_json(points)
        assert len(payload) == 2 and payload[0]["instance"] == "101 x 117"
        path = save_figure8(points, tmp_path / "fig8.json")
        assert path.exists() and path.read_text().startswith("[")


class TestAblations:
    def test_block_size_ablation_covers_requested_sizes(self):
        points = block_size_ablation(order=2, block_sizes=(64, 256))
        assert [p.label for p in points] == ["block=64", "block=256"]
        assert all(p.gpu_time > 0 and p.speedup > 0 for p in points)

    def test_texture_ablation_never_slower(self):
        points = texture_ablation(orders=(1, 2))
        by_label = {p.label: p for p in points}
        assert by_label["1-Hamming/texture"].gpu_time <= by_label["1-Hamming/global"].gpu_time
        assert by_label["2-Hamming/texture"].gpu_time <= by_label["2-Hamming/global"].gpu_time * 1.0001

    def test_device_ablation_orders_generations(self):
        points = device_ablation(order=2)
        by_label = {p.label: p.gpu_time for p in points}
        # The G80-generation card is slower than the GTX 280 for the same kernel.
        assert by_label["NVIDIA 8800 GTX (G80)"] > by_label["NVIDIA GTX 280"]

    def test_multi_gpu_ablation_is_monotone(self):
        points = multi_gpu_ablation(order=3, device_counts=(1, 2, 4))
        times = [p.gpu_time for p in points]
        assert times[0] > times[1] > times[2]

    def test_cpu_cores_ablation_narrows_the_gap(self):
        points = cpu_cores_ablation(order=3, core_counts=(1, 8))
        assert points[0].speedup > points[1].speedup
        # Even an 8-core CPU does not close the 3-Hamming gap in the model.
        assert points[1].speedup > 1.0
