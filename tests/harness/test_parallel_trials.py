"""Tests for the multi-process and batched trial runners of the harness."""

import pytest

from repro.harness import EVALUATOR_SPECS, TRIAL_MODES, run_ppp_experiment
from repro.harness.experiment import _run_single_trial, resolve_evaluator_factory


def records(row):
    return [(t.trial, t.fitness, t.iterations, t.success) for t in row.trials]


class TestParallelTrials:
    def test_parallel_matches_serial(self):
        kwargs = dict(trials=3, max_iterations=25)
        serial = run_ppp_experiment((25, 25), 2, **kwargs)
        parallel = run_ppp_experiment((25, 25), 2, n_jobs=2, **kwargs)
        assert records(parallel) == records(serial)
        assert parallel.successes == serial.successes

    def test_single_trial_worker_is_deterministic(self):
        a = _run_single_trial((25, 25), 2, 20, None, seed=123, trial=0)
        b = _run_single_trial((25, 25), 2, 20, None, seed=123, trial=0)
        assert a.fitness == b.fitness and a.iterations == b.iterations

    def test_invalid_n_jobs(self):
        with pytest.raises(ValueError):
            run_ppp_experiment((25, 25), 1, trials=1, max_iterations=5, n_jobs=0)

    def test_custom_factory_rejected_in_parallel_mode(self):
        from repro.core import GPUEvaluator

        with pytest.raises(ValueError):
            run_ppp_experiment(
                (25, 25), 1, trials=2, max_iterations=5, n_jobs=2,
                evaluator_factory=lambda p, nb: GPUEvaluator(p, nb),
            )

    def test_named_evaluator_spec_accepted_in_parallel_mode(self):
        kwargs = dict(trials=2, max_iterations=10)
        serial = run_ppp_experiment((25, 25), 1, **kwargs)
        parallel = run_ppp_experiment(
            (25, 25), 1, n_jobs=2, evaluator_factory="sequential", **kwargs
        )
        assert records(parallel) == records(serial)

    def test_unknown_named_spec_rejected(self):
        with pytest.raises(ValueError):
            run_ppp_experiment((25, 25), 1, trials=2, max_iterations=5, n_jobs=2,
                               evaluator_factory="quantum")


class TestTrialModeParity:
    @pytest.mark.parametrize("order", [1, 2])
    def test_all_three_modes_produce_identical_records(self, order):
        kwargs = dict(trials=4, max_iterations=20)
        serial = run_ppp_experiment((25, 25), order, trial_mode="serial", **kwargs)
        parallel = run_ppp_experiment((25, 25), order, trial_mode="parallel",
                                      n_jobs=2, **kwargs)
        batched = run_ppp_experiment((25, 25), order, trial_mode="batched", **kwargs)
        assert records(serial) == records(parallel) == records(batched)

    @pytest.mark.parametrize("spec", ["gpu", "sequential"])
    def test_batched_mode_with_named_evaluators(self, spec):
        kwargs = dict(trials=3, max_iterations=15)
        serial = run_ppp_experiment((25, 25), 1, **kwargs)
        batched = run_ppp_experiment((25, 25), 1, trial_mode="batched",
                                     evaluator_factory=spec, **kwargs)
        assert records(batched) == records(serial)

    def test_batched_mode_with_base_seed(self):
        kwargs = dict(trials=3, max_iterations=15, base_seed=42)
        serial = run_ppp_experiment((25, 25), 1, **kwargs)
        batched = run_ppp_experiment((25, 25), 1, trial_mode="batched", **kwargs)
        assert records(batched) == records(serial)

    def test_unknown_trial_mode_rejected(self):
        with pytest.raises(ValueError):
            run_ppp_experiment((25, 25), 1, trials=1, max_iterations=5,
                               trial_mode="quantum")


class TestEvaluatorSpecs:
    def test_registry_names(self):
        assert set(EVALUATOR_SPECS) == {"cpu", "sequential", "gpu", "multi-gpu"}
        assert TRIAL_MODES == ("serial", "parallel", "batched")

    def test_resolve_factory(self):
        from repro.core import CPUEvaluator, GPUEvaluator
        from repro.neighborhoods import OneHammingNeighborhood
        from repro.problems import OneMax

        problem, neighborhood = OneMax(8), OneHammingNeighborhood(8)
        assert isinstance(resolve_evaluator_factory(None)(problem, neighborhood),
                          CPUEvaluator)
        assert isinstance(resolve_evaluator_factory("gpu")(problem, neighborhood),
                          GPUEvaluator)
        custom = lambda p, nb: CPUEvaluator(p, nb)
        assert resolve_evaluator_factory(custom) is custom
        with pytest.raises(ValueError):
            resolve_evaluator_factory("quantum")
        with pytest.raises(TypeError):
            resolve_evaluator_factory(42)
