"""Tests for the multi-process trial runner of the experiment harness."""

import pytest

from repro.harness import run_ppp_experiment
from repro.harness.experiment import _run_single_trial


class TestParallelTrials:
    def test_parallel_matches_serial(self):
        kwargs = dict(trials=3, max_iterations=25)
        serial = run_ppp_experiment((25, 25), 2, **kwargs)
        parallel = run_ppp_experiment((25, 25), 2, n_jobs=2, **kwargs)
        assert [t.fitness for t in parallel.trials] == [t.fitness for t in serial.trials]
        assert [t.iterations for t in parallel.trials] == [t.iterations for t in serial.trials]
        assert parallel.successes == serial.successes

    def test_single_trial_worker_is_deterministic(self):
        a = _run_single_trial((25, 25), 2, 20, None, seed=123, trial=0)
        b = _run_single_trial((25, 25), 2, 20, None, seed=123, trial=0)
        assert a.fitness == b.fitness and a.iterations == b.iterations

    def test_invalid_n_jobs(self):
        with pytest.raises(ValueError):
            run_ppp_experiment((25, 25), 1, trials=1, max_iterations=5, n_jobs=0)

    def test_custom_factory_rejected_in_parallel_mode(self):
        from repro.core import GPUEvaluator

        with pytest.raises(ValueError):
            run_ppp_experiment(
                (25, 25), 1, trials=2, max_iterations=5, n_jobs=2,
                evaluator_factory=lambda p, nb: GPUEvaluator(p, nb),
            )
