"""Invariants of the persistent-kernel iteration loop.

The persistent mode's whole point is captured by three seeded, randomized
invariants:

* **one launch per run** — the entire lockstep loop lives inside a single
  kernel launch (one per device on the multi-GPU backend), so the launch
  overhead is paid once, not once per iteration;
* **O(S) host->device bytes per iteration** — after the one-time block
  upload, the host's only upstream traffic is the per-replica early-stop
  flag (the deltas, the tabu stamps and the admissibility decisions all
  live on-device);
* **valid per-stream timelines** — every stream's intervals are monotone
  and non-overlapping, and the loop occupies exactly one long interval per
  stream it touches.
"""

import numpy as np
import pytest

from repro.core import GPUEvaluator, MultiGPUEvaluator
from repro.gpu import (
    REDUCED_RESULT_BYTES,
    SOLUTION_ENTRY_BYTES,
    STOP_FLAG_BYTES,
    COMPUTE_STREAM,
)
from repro.localsearch import MultiStartRunner, TabuSearch
from repro.neighborhoods import KHammingNeighborhood
from repro.problems.instances import instance_seed, make_table_instance


def _random_setup(seed: int):
    """Draw a random instance / neighborhood / replica-count configuration."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(10, 18))
    order = int(rng.integers(1, 3))
    replicas = int(rng.integers(2, 8))
    max_iterations = int(rng.integers(5, 25))
    problem = make_table_instance((n, n), trial=0)
    neighborhood = KHammingNeighborhood(problem.n, order)
    seeds = [instance_seed(n, n, trial) for trial in range(replicas)]
    return problem, neighborhood, replicas, max_iterations, seeds


def _assert_valid_streams(timeline) -> None:
    for stream in timeline.streams.values():
        intervals = stream.intervals
        assert all(iv.end >= iv.start for iv in intervals)
        for earlier, later in zip(intervals, intervals[1:]):
            assert later.start >= earlier.end


@pytest.mark.parametrize("seed", range(5))
class TestPersistentRunInvariants:
    def test_single_launch_per_run(self, seed):
        problem, neighborhood, _, max_iterations, seeds = _random_setup(seed)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            runner = MultiStartRunner(
                evaluator,
                algorithm="tabu",
                max_iterations=max_iterations,
                transfer_mode="persistent",
            )
            result = runner.run(seeds=seeds)
            assert evaluator.context.stats.kernel_launches == 1
            record = evaluator.last_persistent_record
            assert record is not None
            assert record.iterations == result.iterations
            assert record.launch_overhead > 0.0
            # The amortized per-iteration overhead shrinks with the loop.
            assert record.amortized_overhead == pytest.approx(
                record.launch_overhead / result.iterations
            )

    def test_h2d_is_o_of_s_per_iteration(self, seed):
        problem, neighborhood, replicas, max_iterations, seeds = _random_setup(seed)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            stats = evaluator.context.stats
            runner = MultiStartRunner(
                evaluator,
                algorithm="tabu",
                max_iterations=max_iterations,
                transfer_mode="persistent",
            )
            result = runner.run(seeds=seeds)
            # Exactly: the one-time (R, n) block upload plus one stop-flag
            # byte per replica slot per lockstep iteration.  Nothing else —
            # no deltas, no tabu stamps, no admissibility masks.
            upload = SOLUTION_ENTRY_BYTES * replicas * problem.n
            flags = STOP_FLAG_BYTES * replicas * result.iterations
            assert stats.h2d_bytes == upload + flags
            per_iteration = (stats.h2d_bytes - upload) / max(1, result.iterations)
            assert per_iteration <= STOP_FLAG_BYTES * replicas

    def test_d2h_is_result_ring_only(self, seed):
        problem, neighborhood, _, max_iterations, seeds = _random_setup(seed)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            stats = evaluator.context.stats
            runner = MultiStartRunner(
                evaluator,
                algorithm="tabu",
                max_iterations=max_iterations,
                transfer_mode="persistent",
            )
            multi = runner.run(seeds=seeds)
            # Replica r is evaluated exactly once per iteration it performs
            # (tabu always moves), at 16 bytes per evaluation.
            expected = REDUCED_RESULT_BYTES * sum(r.iterations for r in multi)
            assert stats.d2h_bytes == expected
            assert evaluator.last_persistent_record.ring_bytes == expected

    def test_timeline_one_long_interval_per_stream(self, seed):
        problem, neighborhood, _, max_iterations, seeds = _random_setup(seed)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            timeline = evaluator.context.timeline
            runner = MultiStartRunner(
                evaluator,
                algorithm="tabu",
                max_iterations=max_iterations,
                transfer_mode="persistent",
            )
            runner.run(seeds=seeds)
            _assert_valid_streams(timeline)
            # The whole run collapses to one interval on the compute stream
            # (the persistent launch) and at most one on each copy stream.
            compute = timeline.streams[COMPUTE_STREAM].intervals
            assert len(compute) == 1
            assert compute[0].kind == "kernel"
            assert compute[0].name.startswith("persistent[")
            for stream in timeline.streams.values():
                assert len(stream.intervals) <= 1

    def test_multi_gpu_one_launch_per_device(self, seed):
        problem, neighborhood, _, max_iterations, seeds = _random_setup(seed)
        evaluator = MultiGPUEvaluator(problem, neighborhood, devices=3)
        runner = MultiStartRunner(
            evaluator,
            algorithm="tabu",
            max_iterations=max_iterations,
            transfer_mode="persistent",
        )
        runner.run(seeds=seeds)
        for context in evaluator.pool.contexts:
            if context.stats.kernel_launches:
                assert context.stats.kernel_launches == 1
            _assert_valid_streams(context.timeline)
        evaluator.close()


class TestPersistentSessionSemantics:
    def test_scalar_search_single_launch(self):
        problem = make_table_instance((12, 12), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 2)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            search = TabuSearch(evaluator, max_iterations=15, transfer_mode="persistent")
            search.run(rng=123)
            assert evaluator.context.stats.kernel_launches == 1

    def test_back_to_back_runs_one_launch_each(self):
        problem = make_table_instance((12, 12), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 2)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            search = TabuSearch(evaluator, max_iterations=10, transfer_mode="persistent")
            for run in range(1, 4):
                search.run(rng=run)
                assert evaluator.context.stats.kernel_launches == run

    def test_full_fitness_download_rejected_inside_loop(self):
        problem = make_table_instance((12, 12), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 1)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            evaluator.begin_search(
                np.zeros((2, problem.n), dtype=np.int8), persistent=True
            )
            with pytest.raises(ValueError, match="persistent loop"):
                evaluator.evaluate_resident()  # reduce=None

    def test_finished_loop_rejects_reuse(self):
        problem = make_table_instance((12, 12), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 1)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            evaluator.begin_search(
                np.zeros((2, problem.n), dtype=np.int8), persistent=True
            )
            evaluator.evaluate_resident(reduce="argmin")
            loop = evaluator._loop
            evaluator.end_search()
            assert loop.closed
            with pytest.raises(RuntimeError, match="finished"):
                loop.iterate(2, (None,))

    def test_tabu_memory_requires_session(self):
        problem = make_table_instance((12, 12), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 1)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            with pytest.raises(RuntimeError, match="begin_search"):
                evaluator.init_tabu_memory(3)

    def test_tabu_stamps_need_tabu_memory(self):
        problem = make_table_instance((12, 12), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 1)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            evaluator.begin_search(np.zeros((2, problem.n), dtype=np.int8))
            with pytest.raises(RuntimeError, match="init_tabu_memory"):
                evaluator.evaluate_resident(
                    reduce="argmin", tabu_iterations=np.zeros(2, dtype=np.int64)
                )

    def test_tabu_stamps_exclusive_with_mask(self):
        problem = make_table_instance((12, 12), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 1)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            evaluator.begin_search(np.zeros((2, problem.n), dtype=np.int8))
            evaluator.init_tabu_memory(3)
            with pytest.raises(ValueError, match="not both"):
                evaluator.evaluate_resident(
                    reduce="argmin",
                    tabu_iterations=np.zeros(2, dtype=np.int64),
                    admissible=np.ones((2, neighborhood.size), dtype=bool),
                )

    def test_device_tabu_memory_is_a_device_allocation(self):
        problem = make_table_instance((12, 12), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 2)
        with GPUEvaluator(problem, neighborhood) as evaluator:
            before = evaluator.context.memory.allocated_bytes
            evaluator.begin_search(np.zeros((3, problem.n), dtype=np.int8))
            evaluator.init_tabu_memory(5)
            grown = evaluator.context.memory.allocated_bytes - before
            # The (R, M) int64 stamp block lives in the device-memory model.
            assert grown >= 3 * neighborhood.size * 8
            evaluator.end_search()
            assert evaluator.context.memory.allocated_bytes == before
