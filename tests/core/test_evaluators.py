"""Tests for the evaluation kernels, evaluators and selection policies."""

import numpy as np
import pytest

from repro.core import (
    CPUEvaluator,
    GPUEvaluator,
    MultiGPUEvaluator,
    SequentialEvaluator,
    best_admissible_move,
    best_move,
    build_neighborhood_kernel,
    first_improving_move,
    iteration_times,
    kernel_cost_profile,
    mapping_flops,
    run_times,
)
from repro.gpu import ExecutionMode, GTX_280, grid_for
from repro.neighborhoods import (
    KHammingNeighborhood,
    OneHammingNeighborhood,
    ThreeHammingNeighborhood,
    TwoHammingNeighborhood,
)
from repro.problems import PermutedPerceptronProblem, UBQP
from repro.problems.base import flip_bits


@pytest.fixture(scope="module")
def ppp():
    return PermutedPerceptronProblem.generate(17, 15, rng=0)


def brute_force(problem, solution, neighborhood):
    moves = neighborhood.moves()
    return np.array([problem.evaluate(flip_bits(solution, mv)) for mv in moves])


class TestKernels:
    def test_kernel_cost_profile_grows_with_order(self, ppp):
        assert kernel_cost_profile(ppp, 3).flops > kernel_cost_profile(ppp, 1).flops
        assert mapping_flops(3) > mapping_flops(2) > mapping_flops(1)
        assert mapping_flops(5) > 0

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_vectorized_and_per_thread_kernels_agree(self, ppp, k):
        neighborhood = KHammingNeighborhood(ppp.n, k)
        kernel = build_neighborhood_kernel(ppp, neighborhood)
        solution = ppp.random_solution(1)
        cfg = grid_for(neighborhood.size, 64)
        out_vec = np.zeros(neighborhood.size)
        out_thread = np.zeros(neighborhood.size)
        kernel.execute(cfg, (solution, out_vec), active_threads=neighborhood.size,
                       mode=ExecutionMode.VECTORIZED)
        kernel.execute(cfg, (solution, out_thread), active_threads=neighborhood.size,
                       mode=ExecutionMode.PER_THREAD)
        assert np.array_equal(out_vec, out_thread)
        assert np.array_equal(out_vec, brute_force(ppp, solution, neighborhood))


class TestEvaluatorsAgree:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_all_platforms_produce_identical_fitnesses(self, ppp, k):
        neighborhood = KHammingNeighborhood(ppp.n, k)
        solution = ppp.random_solution(3)
        expected = brute_force(ppp, solution, neighborhood)

        seq = SequentialEvaluator(ppp, neighborhood)
        cpu = CPUEvaluator(ppp, neighborhood)
        gpu = GPUEvaluator(ppp, neighborhood)
        multi = MultiGPUEvaluator(ppp, neighborhood, devices=3)

        for evaluator in (seq, cpu, gpu, multi):
            got = evaluator.evaluate(solution)
            assert np.array_equal(got, expected), evaluator.platform

    def test_subset_evaluation(self, ppp):
        neighborhood = TwoHammingNeighborhood(ppp.n)
        solution = ppp.random_solution(5)
        idx = np.array([0, 3, 17, neighborhood.size - 1])
        expected = brute_force(ppp, solution, neighborhood)[idx]
        for evaluator in (
            CPUEvaluator(ppp, neighborhood),
            GPUEvaluator(ppp, neighborhood),
            SequentialEvaluator(ppp, neighborhood),
        ):
            assert np.array_equal(evaluator.evaluate(solution, idx), expected)

    def test_other_problem_types(self):
        problem = UBQP.random(12, rng=4)
        neighborhood = TwoHammingNeighborhood(12)
        solution = problem.random_solution(0)
        expected = brute_force(problem, solution, neighborhood)
        assert np.allclose(GPUEvaluator(problem, neighborhood).evaluate(solution), expected)
        assert np.allclose(CPUEvaluator(problem, neighborhood).evaluate(solution), expected)

    def test_mismatched_problem_and_neighborhood(self, ppp):
        with pytest.raises(ValueError):
            CPUEvaluator(ppp, OneHammingNeighborhood(ppp.n + 1))

    def test_out_of_range_indices(self, ppp):
        ev = CPUEvaluator(ppp, OneHammingNeighborhood(ppp.n))
        with pytest.raises(IndexError):
            ev.evaluate(ppp.random_solution(0), np.array([ppp.n]))


class TestEvaluatorStats:
    def test_stats_accumulate_and_reset(self, ppp):
        neighborhood = OneHammingNeighborhood(ppp.n)
        ev = CPUEvaluator(ppp, neighborhood)
        solution = ppp.random_solution(0)
        ev.evaluate(solution)
        ev.evaluate(solution)
        assert ev.stats.calls == 2
        assert ev.stats.evaluations == 2 * neighborhood.size
        assert ev.stats.simulated_time > 0
        ev.reset_stats()
        assert ev.stats.calls == 0 and ev.stats.simulated_time == 0.0

    def test_gpu_time_includes_launch_overhead(self, ppp):
        neighborhood = OneHammingNeighborhood(ppp.n)
        ev = GPUEvaluator(ppp, neighborhood)
        ev.evaluate(ppp.random_solution(0))
        assert ev.stats.simulated_time >= GTX_280.kernel_launch_overhead

    def test_gpu_simulated_time_matches_iteration_model(self, ppp):
        # The evaluator's accumulated simulated time should agree with the
        # analytic per-iteration estimate used by the harness.
        neighborhood = TwoHammingNeighborhood(ppp.n)
        ev = GPUEvaluator(ppp, neighborhood)
        ev.evaluate(ppp.random_solution(0))
        estimate = iteration_times(ppp, neighborhood).gpu_time
        assert ev.stats.simulated_time == pytest.approx(estimate, rel=0.05)

    def test_multigpu_elapsed_is_less_than_single_gpu(self, ppp):
        neighborhood = ThreeHammingNeighborhood(ppp.n)
        single = GPUEvaluator(ppp, neighborhood)
        quad = MultiGPUEvaluator(ppp, neighborhood, devices=4)
        solution = ppp.random_solution(0)
        single.evaluate(solution)
        quad.evaluate(solution)
        # Partitioning a large neighborhood over 4 devices must cut the
        # simulated elapsed time (though not by a full 4x: per-launch
        # overheads are replicated).
        assert quad.stats.simulated_time < single.stats.simulated_time
        assert quad.num_devices == 4


class TestIterationTimes:
    def test_small_1hamming_gpu_slower_than_cpu(self):
        # Paper Table I: for the literature instances the 1-Hamming GPU
        # version is *slower* than the CPU version.
        problem = PermutedPerceptronProblem.generate(73, 73, rng=0)
        t = iteration_times(problem, OneHammingNeighborhood(73))
        assert t.speedup < 1.0

    def test_2hamming_and_3hamming_speedups_in_paper_band(self):
        # Paper Tables II and III: accelerations of roughly x10-x26.
        problem = PermutedPerceptronProblem.generate(73, 73, rng=0)
        t2 = iteration_times(problem, TwoHammingNeighborhood(73))
        t3 = iteration_times(problem, ThreeHammingNeighborhood(73))
        assert 5 <= t2.speedup <= 40
        assert 10 <= t3.speedup <= 60
        assert t3.speedup > t2.speedup

    def test_gpu_time_components_positive(self):
        problem = PermutedPerceptronProblem.generate(31, 31, rng=0)
        t = iteration_times(problem, TwoHammingNeighborhood(31))
        assert t.gpu_kernel_time > 0
        assert t.gpu_transfer_time > 0
        assert t.gpu_overhead_time > 0
        assert t.gpu_time == pytest.approx(
            t.gpu_kernel_time + t.gpu_transfer_time + t.gpu_overhead_time
        )

    def test_run_times_scale_linearly(self):
        problem = PermutedPerceptronProblem.generate(31, 31, rng=0)
        nb = TwoHammingNeighborhood(31)
        one = run_times(problem, nb, 1)
        ten = run_times(problem, nb, 10)
        assert ten.cpu_time == pytest.approx(10 * one.cpu_time)
        assert ten.gpu_time == pytest.approx(10 * one.gpu_time)
        with pytest.raises(ValueError):
            run_times(problem, nb, -1)

    def test_multicore_cpu_ablation_reduces_cpu_time(self):
        problem = PermutedPerceptronProblem.generate(73, 73, rng=0)
        nb = TwoHammingNeighborhood(73)
        single = iteration_times(problem, nb, cpu_cores=1)
        multi = iteration_times(problem, nb, cpu_cores=8)
        assert multi.cpu_time < single.cpu_time


class TestSelection:
    def test_best_move(self):
        sel = best_move(np.array([5.0, 2.0, 7.0, 2.0]))
        assert sel.index == 1 and sel.fitness == 2.0
        with pytest.raises(ValueError):
            best_move(np.array([]))

    def test_best_admissible_move_respects_tabu(self):
        fitnesses = np.array([1.0, 2.0, 3.0])
        forbidden = np.array([True, False, False])
        sel = best_admissible_move(fitnesses, forbidden)
        assert sel.index == 1

    def test_aspiration_overrides_tabu(self):
        fitnesses = np.array([1.0, 2.0, 3.0])
        forbidden = np.array([True, False, False])
        sel = best_admissible_move(fitnesses, forbidden, aspiration_threshold=1.5)
        assert sel.index == 0

    def test_all_tabu_returns_none(self):
        fitnesses = np.array([1.0, 2.0])
        forbidden = np.array([True, True])
        assert best_admissible_move(fitnesses, forbidden) is None

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            best_admissible_move(np.array([1.0]), np.array([True, False]))

    def test_first_improving_move(self):
        fitnesses = np.array([5.0, 4.0, 1.0])
        sel = first_improving_move(fitnesses, current_fitness=4.5)
        assert sel.index == 1
        assert first_improving_move(fitnesses, current_fitness=0.5) is None
