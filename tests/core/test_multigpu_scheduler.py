"""Seeded invariants of the concurrent multi-GPU scheduler path.

The refactored :class:`~repro.core.evaluators.MultiGPUEvaluator` issues
per-device work asynchronously on independent timelines, routes resident
delta packets over peer-to-peer links and can migrate replicas between
devices.  These tests pin down the structural guarantees:

* per-device stream timelines stay monotone and non-overlapping per stream;
* the cross-device makespan never exceeds the serialized per-device sum;
* P2P-routed delta bytes never appear in the H2D/D2H counters;
* every scheduling decision (weighted partitions, peer routing, pinned
  staging, migration) leaves the trajectories bit-identical to the
  single-GPU reference.
"""

import numpy as np
import pytest

from repro.core import GPUEvaluator, MultiGPUEvaluator
from repro.gpu import GTX_280, GTX_8800, TESLA_C1060, HostMemoryKind
from repro.harness import format_experiment_table, run_ppp_experiment
from repro.localsearch import TRANSFER_MODES, MultiStartRunner
from repro.neighborhoods import KHammingNeighborhood
from repro.problems.instances import instance_seed, make_table_instance

SPEC = (21, 21)
ORDER = 2
REPLICAS = 7
MAX_ITERATIONS = 9


@pytest.fixture()
def problem():
    return make_table_instance(SPEC, trial=0)


@pytest.fixture()
def neighborhood(problem):
    return KHammingNeighborhood(problem.n, ORDER)


def _seeds(count=REPLICAS):
    return [instance_seed(SPEC[0], SPEC[1], trial) for trial in range(count)]


def _records(result):
    return [
        (r.best_fitness, r.iterations, r.stopping_reason, tuple(r.best_solution))
        for r in result
    ]


def _reference(problem, neighborhood, algorithm="tabu"):
    evaluator = GPUEvaluator(problem, neighborhood)
    runner = MultiStartRunner(
        evaluator, algorithm=algorithm, max_iterations=MAX_ITERATIONS,
        transfer_mode="full",
    )
    records = _records(runner.run(seeds=_seeds()))
    evaluator.close()
    return records


def _assert_valid_streams(timeline):
    for stream in timeline.streams.values():
        previous_end = 0.0
        for interval in stream.intervals:
            assert interval.start >= previous_end - 1e-12
            assert interval.end >= interval.start
            previous_end = interval.end


class TestCrossDeviceTimelines:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("mode", ["delta", "reduced"])
    def test_streams_monotone_and_makespan_below_serialized_sum(self, seed, mode):
        rng = np.random.default_rng(seed)
        m = n = int(rng.integers(17, 29))
        problem = make_table_instance((m, n), trial=0)
        neighborhood = KHammingNeighborhood(n, int(rng.integers(1, 3)))
        replicas = int(rng.integers(4, 9))
        devices = int(rng.integers(2, 5))
        evaluator = MultiGPUEvaluator(problem, neighborhood, devices=devices)
        runner = MultiStartRunner(
            evaluator, algorithm="tabu",
            max_iterations=int(rng.integers(4, 12)), transfer_mode=mode,
        )
        runner.run(seeds=[instance_seed(m, n, t) for t in range(replicas)])
        for context in evaluator.pool.contexts:
            _assert_valid_streams(context.timeline)
        scheduler = evaluator.scheduler
        assert scheduler.makespan <= scheduler.serialized_sum + 1e-12
        # More than one device did real work, so true overlap must exist.
        busy = [ctx.timeline.busy_time for ctx in evaluator.pool.contexts]
        if sum(b > 0 for b in busy) > 1:
            assert scheduler.makespan < scheduler.serialized_sum
        evaluator.close()

    def test_full_mode_batch_path_also_overlaps(self, problem, neighborhood):
        evaluator = MultiGPUEvaluator(problem, neighborhood, devices=3)
        block = np.stack(
            [problem.random_solution(np.random.default_rng(s)) for s in range(5)]
        )
        evaluator.evaluate_many(block)
        scheduler = evaluator.scheduler
        assert scheduler.makespan < scheduler.serialized_sum
        assert evaluator.stats.simulated_time == pytest.approx(scheduler.makespan)
        evaluator.close()


class TestPeerRoutedDeltas:
    def _run(self, problem, neighborhood, peer_routing):
        evaluator = MultiGPUEvaluator(
            problem, neighborhood, devices=3, peer_routing=peer_routing
        )
        runner = MultiStartRunner(
            evaluator, algorithm="tabu", max_iterations=MAX_ITERATIONS,
            transfer_mode="delta",
        )
        records = _records(runner.run(seeds=_seeds()))
        contexts = evaluator.pool.contexts
        stats = {
            "records": records,
            "per_h2d": [c.stats.h2d_bytes for c in contexts],
            "per_d2h": [c.stats.d2h_bytes for c in contexts],
            "p2p": sum(c.stats.p2p_bytes for c in contexts),
            "h2d_count": sum(c.memory.transfer_count("h2d") for c in contexts),
            "host_busy": evaluator.scheduler.host_timeline.busy_time,
        }
        evaluator.close()
        return stats

    def test_p2p_bytes_never_in_h2d_d2h_counters(self, problem, neighborhood):
        routed = self._run(problem, neighborhood, True)
        host_routed = self._run(problem, neighborhood, False)
        assert routed["records"] == host_routed["records"]
        assert routed["p2p"] > 0
        assert host_routed["p2p"] == 0
        # Downloads are untouched by the routing choice.
        assert routed["per_d2h"] == host_routed["per_d2h"]
        # The forwarded delta slices reach the non-hub devices over the peer
        # link only: their h2d counters shrink to the session upload plus
        # the id-list packets — the delta pair bytes never show up there.
        for on, off in zip(routed["per_h2d"][1:], host_routed["per_h2d"][1:]):
            assert on < off
        # The host issues one combined packet instead of one per device.
        assert routed["h2d_count"] < host_routed["h2d_count"]
        assert routed["host_busy"] < host_routed["host_busy"]

    def test_single_device_pool_never_routes(self, problem, neighborhood):
        evaluator = MultiGPUEvaluator(problem, neighborhood, devices=1)
        assert not evaluator.peer_routing
        evaluator.close()

    def test_non_capable_pool_falls_back_to_host(self, problem, neighborhood):
        evaluator = MultiGPUEvaluator(
            problem, neighborhood, devices=[GTX_280, GTX_8800]
        )
        assert not evaluator.peer_routing
        runner = MultiStartRunner(
            evaluator, algorithm="tabu", max_iterations=MAX_ITERATIONS,
            transfer_mode="delta",
        )
        records = _records(runner.run(seeds=_seeds()))
        assert records == _reference(problem, neighborhood)
        assert sum(c.stats.p2p_bytes for c in evaluator.pool.contexts) == 0
        evaluator.close()


class TestEquivalence:
    @pytest.mark.parametrize("mode", TRANSFER_MODES)
    @pytest.mark.parametrize("pinned", [False, True])
    def test_all_modes_match_single_gpu(self, problem, neighborhood, mode, pinned):
        reference = _reference(problem, neighborhood)
        evaluator = MultiGPUEvaluator(
            problem, neighborhood, devices=3, pinned=pinned
        )
        runner = MultiStartRunner(
            evaluator, algorithm="tabu", max_iterations=MAX_ITERATIONS,
            transfer_mode=mode,
        )
        assert _records(runner.run(seeds=_seeds())) == reference
        evaluator.close()

    def test_heterogeneous_pool_weighted_partitions_match(self, problem, neighborhood):
        evaluator = MultiGPUEvaluator(
            problem, neighborhood, devices=[GTX_280, TESLA_C1060, GTX_8800]
        )
        runner = MultiStartRunner(
            evaluator, algorithm="tabu", max_iterations=MAX_ITERATIONS,
            transfer_mode="reduced",
        )
        records = _records(runner.run(seeds=_seeds()))
        assert records == _reference(problem, neighborhood)
        # The weighted partition hands the slower G80 the smallest share.
        parts = evaluator.pool.partitions(1000, evaluator._kernel_cost())
        sizes = [p.size for p in parts]
        assert sizes[2] == min(sizes)
        assert sum(sizes) == 1000
        evaluator.close()

    def test_pinned_pool_is_faster_and_stages_packets(self, problem, neighborhood):
        elapsed = {}
        for pinned in (False, True):
            evaluator = MultiGPUEvaluator(problem, neighborhood, devices=2, pinned=pinned)
            runner = MultiStartRunner(
                evaluator, algorithm="tabu", max_iterations=MAX_ITERATIONS,
                transfer_mode="reduced",
            )
            runner.run(seeds=_seeds())
            elapsed[pinned] = sum(
                c.stats.transfer_time for c in evaluator.pool.contexts
            )
            if pinned:
                pools = [c.staging_pool for c in evaluator.pool.contexts]
                assert all(pool is not None for pool in pools)
                assert sum(pool.stagings for pool in pools) > 0
                kinds = [
                    c.memory.bytes_transferred(host_kind=HostMemoryKind.PAGEABLE)
                    for c in evaluator.pool.contexts
                ]
                assert sum(kinds) == 0
            evaluator.close()
        assert elapsed[True] < elapsed[False]


class TestReplicaMigration:
    def test_rebalance_preserves_trajectories(self, problem, neighborhood):
        reference = _reference(problem, neighborhood)
        evaluator = MultiGPUEvaluator(problem, neighborhood, devices=3)
        runner = MultiStartRunner(
            evaluator, algorithm="tabu", max_iterations=MAX_ITERATIONS,
            transfer_mode="reduced", rebalance_every=2,
        )
        assert _records(runner.run(seeds=_seeds())) == reference
        for context in evaluator.pool.contexts:
            _assert_valid_streams(context.timeline)
        evaluator.close()

    def test_migration_moves_rows_over_peer_links(self, problem, neighborhood):
        evaluator = MultiGPUEvaluator(problem, neighborhood, devices=3)
        block = np.stack(
            [problem.random_solution(np.random.default_rng(s)) for s in range(6)]
        )
        evaluator.begin_search(block)
        evaluator.init_tabu_memory(4)
        evaluator.evaluate_resident(
            reduce="argmin", tabu_iterations=np.zeros(6, dtype=np.int64)
        )
        before_p2p = sum(c.stats.p2p_bytes for c in evaluator.pool.contexts)
        # Pretend the first device's replicas all finished: the rebalance
        # must shift ownership toward the devices with remaining work.
        active = np.array([False, False, True, True, True, True])
        moved = evaluator.rebalance_resident(active=active)
        assert moved > 0
        after_p2p = sum(c.stats.p2p_bytes for c in evaluator.pool.contexts)
        assert after_p2p > before_p2p
        # The session stays fully functional after the migration.
        indices, fitnesses = evaluator.evaluate_resident(
            np.nonzero(active)[0],
            reduce="argmin",
            tabu_iterations=np.ones(4, dtype=np.int64),
        )
        assert indices.shape == (4,) and fitnesses.shape == (4,)
        evaluator.close()

    def test_migration_host_fallback_without_peer_links(self, problem, neighborhood):
        evaluator = MultiGPUEvaluator(
            problem, neighborhood, devices=[GTX_280, GTX_8800]
        )
        block = np.stack(
            [problem.random_solution(np.random.default_rng(s)) for s in range(4)]
        )
        evaluator.begin_search(block)
        before = [
            (c.stats.d2h_bytes, c.stats.h2d_bytes) for c in evaluator.pool.contexts
        ]
        moved = evaluator.rebalance_resident(
            active=np.array([False, True, True, True])
        )
        if moved:
            after = [
                (c.stats.d2h_bytes, c.stats.h2d_bytes) for c in evaluator.pool.contexts
            ]
            assert after != before
            assert sum(c.stats.p2p_bytes for c in evaluator.pool.contexts) == 0
        evaluator.close()

    def test_rebalance_rejected_during_persistent_launch(self, problem, neighborhood):
        evaluator = MultiGPUEvaluator(problem, neighborhood, devices=2)
        block = np.stack(
            [problem.random_solution(np.random.default_rng(s)) for s in range(4)]
        )
        evaluator.begin_search(block, persistent=True)
        with pytest.raises(RuntimeError, match="persistent"):
            evaluator.rebalance_resident()
        evaluator.close()

    def test_rebalance_requires_session(self, problem, neighborhood):
        evaluator = MultiGPUEvaluator(problem, neighborhood, devices=2)
        with pytest.raises(RuntimeError, match="begin_search"):
            evaluator.rebalance_resident()
        evaluator.close()

    def test_noop_when_already_balanced(self, problem, neighborhood):
        evaluator = MultiGPUEvaluator(problem, neighborhood, devices=2)
        block = np.stack(
            [problem.random_solution(np.random.default_rng(s)) for s in range(4)]
        )
        evaluator.begin_search(block)
        assert evaluator.rebalance_resident() == 0
        evaluator.close()


class TestHarnessColumns:
    def test_experiment_row_reports_pool_accounting(self):
        row = run_ppp_experiment(
            (15, 15), 1, trials=3, max_iterations=8,
            evaluator_factory="multi-gpu", trial_mode="batched",
            transfer_mode="reduced", devices=3, pinned=True,
        )
        assert row.num_devices == 3
        assert row.pinned
        assert row.p2p_bytes > 0
        assert row.transfer_time_s > 0
        assert row.sim_elapsed_s <= row.serialized_device_s
        assert row.cross_device_overlap_s > 0
        assert len(row.device_elapsed_s) == 3
        payload = row.as_dict()
        assert payload["num_devices"] == 3 and payload["pinned"] is True
        table = format_experiment_table([row])
        assert "Devices" in table and "P2P" in table and "Pinned" in table

    def test_single_gpu_row_hides_device_columns(self):
        row = run_ppp_experiment(
            (15, 15), 1, trials=2, max_iterations=6,
            evaluator_factory="gpu", trial_mode="batched",
        )
        assert row.num_devices == 1 and row.p2p_bytes == 0
        table = format_experiment_table([row])
        assert "Devices" not in table

    def test_pool_options_rejected_for_cpu_specs(self):
        with pytest.raises(ValueError, match="pinned"):
            run_ppp_experiment(
                (15, 15), 1, trials=1, max_iterations=2,
                evaluator_factory="cpu", pinned=True,
            )
        with pytest.raises(ValueError, match="device"):
            run_ppp_experiment(
                (15, 15), 1, trials=1, max_iterations=2,
                evaluator_factory="gpu", devices=2,
            )
