"""Tests for the batched ``evaluate_many`` path of every evaluator backend."""

import numpy as np
import pytest

from repro.core import (
    CPUEvaluator,
    GPUEvaluator,
    MultiGPUEvaluator,
    SequentialEvaluator,
)
from repro.core.kernels import build_batch_neighborhood_kernel
from repro.gpu import ExecutionMode, GPUContext, GTX_280, grid_for, normalize_work
from repro.neighborhoods import KHammingNeighborhood, TwoHammingNeighborhood
from repro.problems import PermutedPerceptronProblem


@pytest.fixture(scope="module")
def ppp():
    return PermutedPerceptronProblem.generate(17, 15, rng=0)


@pytest.fixture(scope="module")
def solutions(ppp):
    rng = np.random.default_rng(1)
    return np.stack([ppp.random_solution(rng) for _ in range(6)])


def reference_rows(ppp, neighborhood, solutions, indices=None):
    evaluator = CPUEvaluator(ppp, neighborhood)
    return np.stack([evaluator.evaluate(row, indices) for row in solutions])


class TestEvaluateManyAgrees:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_all_backends_match_the_scalar_path(self, ppp, solutions, order):
        neighborhood = KHammingNeighborhood(ppp.n, order)
        expected = reference_rows(ppp, neighborhood, solutions)
        backends = [
            SequentialEvaluator(ppp, neighborhood),
            CPUEvaluator(ppp, neighborhood),
            GPUEvaluator(ppp, neighborhood),
            MultiGPUEvaluator(ppp, neighborhood, devices=3),
        ]
        for evaluator in backends:
            got = evaluator.evaluate_many(solutions)
            assert got.shape == expected.shape
            assert np.array_equal(got, expected), evaluator.platform

    def test_subset_indices(self, ppp, solutions):
        neighborhood = TwoHammingNeighborhood(ppp.n)
        indices = np.array([0, 2, 31, neighborhood.size - 1])
        expected = reference_rows(ppp, neighborhood, solutions)[:, indices]
        for evaluator in (
            CPUEvaluator(ppp, neighborhood),
            GPUEvaluator(ppp, neighborhood),
            MultiGPUEvaluator(ppp, neighborhood, devices=2),
            SequentialEvaluator(ppp, neighborhood),
        ):
            assert np.array_equal(evaluator.evaluate_many(solutions, indices), expected)

    def test_single_row_block_matches_evaluate(self, ppp, solutions):
        neighborhood = TwoHammingNeighborhood(ppp.n)
        evaluator = CPUEvaluator(ppp, neighborhood)
        single = evaluator.evaluate(solutions[0])
        assert np.array_equal(evaluator.evaluate_many(solutions[:1])[0], single)
        # A 1-D input is promoted to a one-row block.
        assert np.array_equal(evaluator.evaluate_many(solutions[0])[0], single)

    def test_shrinking_replica_block(self, ppp, solutions):
        # The GPU backend reallocates its device-side solution buffer when
        # the number of in-flight replicas changes (replicas finish at
        # different times in a multi-start run).
        neighborhood = TwoHammingNeighborhood(ppp.n)
        evaluator = GPUEvaluator(ppp, neighborhood)
        full = evaluator.evaluate_many(solutions)
        shrunk = evaluator.evaluate_many(solutions[:2])
        assert np.array_equal(shrunk, full[:2])

    def test_stats_accounting(self, ppp, solutions):
        neighborhood = TwoHammingNeighborhood(ppp.n)
        for evaluator in (
            CPUEvaluator(ppp, neighborhood),
            GPUEvaluator(ppp, neighborhood),
            MultiGPUEvaluator(ppp, neighborhood, devices=2),
        ):
            evaluator.evaluate_many(solutions)
            assert evaluator.stats.calls == 1
            assert evaluator.stats.evaluations == solutions.shape[0] * neighborhood.size
            assert evaluator.stats.simulated_time > 0

    def test_validation(self, ppp, solutions):
        evaluator = CPUEvaluator(ppp, TwoHammingNeighborhood(ppp.n))
        with pytest.raises(ValueError):
            evaluator.evaluate_many(np.zeros((2, ppp.n + 1), dtype=np.int8))
        with pytest.raises(ValueError):
            evaluator.evaluate_many(np.full((2, ppp.n), 2, dtype=np.int8))
        with pytest.raises(IndexError):
            evaluator.evaluate_many(solutions, np.array([evaluator.neighborhood.size]))
        empty = evaluator.evaluate_many(np.empty((0, ppp.n), dtype=np.int8))
        assert empty.shape == (0, evaluator.neighborhood.size)


class TestBatchedGPUSemantics:
    def test_single_launch_and_single_upload(self, ppp, solutions):
        neighborhood = TwoHammingNeighborhood(ppp.n)
        context = GPUContext(GTX_280, keep_launch_records=True)
        evaluator = GPUEvaluator(ppp, neighborhood, context=context)
        evaluator.evaluate_many(solutions)
        # One solution-block upload, one S x M launch, one fitness download.
        assert context.stats.kernel_launches == 1
        record = context.stats.launch_records[-1]
        assert record.work_shape == (solutions.shape[0], neighborhood.size)
        assert record.batch_size == solutions.shape[0]
        assert record.active_threads == solutions.shape[0] * neighborhood.size
        assert context.stats.h2d_bytes == solutions.shape[0] * ppp.n * 4
        assert context.stats.d2h_bytes == solutions.shape[0] * neighborhood.size * 8

    def test_batched_launch_amortizes_overhead(self, ppp, solutions):
        # S separate scalar evaluations pay S launch overheads and S
        # transfer latencies; the batched path pays each once.
        neighborhood = TwoHammingNeighborhood(ppp.n)
        scalar = GPUEvaluator(ppp, neighborhood)
        for row in solutions:
            scalar.evaluate(row)
        batched = GPUEvaluator(ppp, neighborhood)
        batched.evaluate_many(solutions)
        assert batched.stats.simulated_time < scalar.stats.simulated_time

    def test_multigpu_splits_flat_space(self, ppp, solutions):
        neighborhood = TwoHammingNeighborhood(ppp.n)
        multi = MultiGPUEvaluator(ppp, neighborhood, devices=4)
        expected = reference_rows(ppp, neighborhood, solutions)
        assert np.array_equal(multi.evaluate_many(solutions), expected)
        # Every device context did real work (the flat S x M space is much
        # larger than the device count).
        assert all(ctx.stats.kernel_launches >= 1 for ctx in multi.pool.contexts)

    def test_batch_kernel_per_thread_mode_agrees(self, ppp, solutions):
        neighborhood = KHammingNeighborhood(ppp.n, 1)
        kernel = build_batch_neighborhood_kernel(ppp, neighborhood)
        total = solutions.shape[0] * neighborhood.size
        config = grid_for(total, 32)
        out_vec = np.zeros(total)
        out_thread = np.zeros(total)
        kernel.execute(config, (solutions, out_vec), active_threads=total,
                       mode=ExecutionMode.VECTORIZED)
        kernel.execute(config, (solutions, out_thread), active_threads=total,
                       mode=ExecutionMode.PER_THREAD)
        assert np.array_equal(out_vec, out_thread)


class TestWorkShapes:
    def test_normalize_work(self):
        assert normalize_work(7) == (7, (7,))
        assert normalize_work((3, 5)) == (15, (3, 5))
        with pytest.raises(ValueError):
            normalize_work((0, 5))
        with pytest.raises(ValueError):
            normalize_work(())

    def test_unbatched_launch_records_1d_shape(self, ppp):
        neighborhood = TwoHammingNeighborhood(ppp.n)
        context = GPUContext(GTX_280, keep_launch_records=True)
        evaluator = GPUEvaluator(ppp, neighborhood, context=context)
        evaluator.evaluate(ppp.random_solution(0))
        record = context.stats.launch_records[-1]
        assert record.work_shape == (neighborhood.size,)
        assert record.batch_size == 1


class TestFullNeighborhoodFastPathRegression:
    def test_shuffled_full_permutation_respects_index_order(self, ppp):
        # Regression: a permutation of the full index range used to slip
        # through the fast-path check and come back in canonical order.
        neighborhood = TwoHammingNeighborhood(ppp.n)
        solution = ppp.random_solution(5)
        reference = CPUEvaluator(ppp, neighborhood).evaluate(solution)
        permutation = np.random.default_rng(3).permutation(neighborhood.size)
        # Pin the endpoints the old check looked at, so only contiguity
        # distinguishes the permutation from the canonical range.
        first = int(np.where(permutation == 0)[0][0])
        permutation[[0, first]] = permutation[[first, 0]]
        last = int(np.where(permutation == neighborhood.size - 1)[0][0])
        permutation[[-1, last]] = permutation[[last, -1]]
        assert permutation[0] == 0 and permutation[-1] == neighborhood.size - 1
        assert not np.array_equal(permutation, np.arange(neighborhood.size))
        evaluator = GPUEvaluator(ppp, neighborhood)
        assert np.array_equal(evaluator.evaluate(solution, permutation),
                              reference[permutation])

    def test_d2h_bytes_match_float64_fitness_buffer(self, ppp):
        neighborhood = TwoHammingNeighborhood(ppp.n)
        evaluator = GPUEvaluator(ppp, neighborhood)
        evaluator.evaluate(ppp.random_solution(0))
        assert evaluator.context.stats.d2h_bytes == 8 * neighborhood.size
