"""Device-resident pipeline: delta transfers, fused reduction, buffer hygiene.

The transfer-accounting invariants here are the paper's core claim made
testable: once the solution block is device-resident, the per-iteration PCIe
traffic is ``O(S)`` — flipped-bit deltas up, per-replica ``(index, fitness)``
pairs down — instead of the ``O(S·n)`` uploads and ``O(S·M)`` downloads of
the naive loop.
"""

import numpy as np
import pytest

from repro.core import CPUEvaluator, GPUEvaluator, MultiGPUEvaluator
from repro.gpu import FITNESS_BYTES, REDUCED_RESULT_BYTES, SOLUTION_ENTRY_BYTES
from repro.harness import format_experiment_table, run_ppp_experiment
from repro.localsearch import (
    TRANSFER_MODES,
    MultiStartRunner,
    NeighborhoodLocalSearch,
    TabuSearch,
)
from repro.localsearch.hill_climbing import (
    FirstImprovementHillClimbing,
    HillClimbing,
)
from repro.neighborhoods import KHammingNeighborhood
from repro.problems.instances import instance_seed, make_table_instance

SPEC = (15, 15)
ORDER = 2
REPLICAS = 6
MAX_ITERATIONS = 30


@pytest.fixture()
def problem():
    return make_table_instance(SPEC, trial=0)


@pytest.fixture()
def neighborhood(problem):
    return KHammingNeighborhood(problem.n, ORDER)


def _seeds(count=REPLICAS):
    return [instance_seed(SPEC[0], SPEC[1], trial) for trial in range(count)]


def _records(result):
    return [
        (r.best_fitness, r.iterations, r.stopping_reason, tuple(r.best_solution))
        for r in result
    ]


class TestBitIdentity:
    @pytest.mark.parametrize("algorithm", MultiStartRunner.ALGORITHMS)
    def test_multistart_modes_identical(self, problem, neighborhood, algorithm):
        reference = None
        for mode in TRANSFER_MODES:
            evaluator = GPUEvaluator(problem, neighborhood)
            runner = MultiStartRunner(
                evaluator,
                algorithm=algorithm,
                max_iterations=MAX_ITERATIONS,
                transfer_mode=mode,
            )
            records = _records(runner.run(seeds=_seeds()))
            evaluator.close()
            if reference is None:
                reference = records
            assert records == reference, f"{algorithm}/{mode} diverged from full"

    @pytest.mark.parametrize("algorithm", MultiStartRunner.ALGORITHMS)
    def test_multi_gpu_reduced_matches_single(self, problem, neighborhood, algorithm):
        single = GPUEvaluator(problem, neighborhood)
        runner = MultiStartRunner(
            single, algorithm=algorithm, max_iterations=MAX_ITERATIONS,
            transfer_mode="full",
        )
        reference = _records(runner.run(seeds=_seeds()))
        multi = MultiGPUEvaluator(problem, neighborhood, devices=3)
        runner = MultiStartRunner(
            multi, algorithm=algorithm, max_iterations=MAX_ITERATIONS,
            transfer_mode="reduced",
        )
        assert _records(runner.run(seeds=_seeds())) == reference
        multi.close()

    @pytest.mark.parametrize(
        "search_cls", [TabuSearch, HillClimbing, FirstImprovementHillClimbing]
    )
    def test_scalar_search_modes_identical(self, problem, neighborhood, search_cls):
        reference = None
        for mode in TRANSFER_MODES:
            evaluator = GPUEvaluator(problem, neighborhood)
            search = search_cls(
                evaluator, max_iterations=MAX_ITERATIONS, transfer_mode=mode
            )
            result = search.run(rng=1234)
            record = (
                result.best_fitness,
                result.iterations,
                result.stopping_reason,
                tuple(result.best_solution),
            )
            evaluator.close()
            if reference is None:
                reference = record
            assert record == reference, f"{search_cls.__name__}/{mode} diverged"


class TestTransferInvariants:
    def _resident_evaluator(self, problem, neighborhood, replicas=REPLICAS):
        evaluator = GPUEvaluator(problem, neighborhood)
        rng = np.random.default_rng(0)
        block = np.stack([problem.random_solution(rng) for _ in range(replicas)])
        evaluator.begin_search(block)
        return evaluator

    def test_reduced_d2h_is_16_bytes_per_replica(self, problem, neighborhood):
        evaluator = self._resident_evaluator(problem, neighborhood)
        stats = evaluator.context.stats
        before = stats.d2h_bytes
        evaluator.evaluate_resident(reduce="argmin")
        per_iteration = stats.d2h_bytes - before
        assert per_iteration == REDUCED_RESULT_BYTES * REPLICAS
        assert per_iteration <= 16 * REPLICAS
        # Orders of magnitude below the full download.
        assert per_iteration < FITNESS_BYTES * REPLICAS * neighborhood.size / 4

    def test_delta_h2d_is_o_of_s_not_s_times_n(self, problem, neighborhood):
        evaluator = self._resident_evaluator(problem, neighborhood)
        stats = evaluator.context.stats
        # One applied k-Hamming move per replica, then one evaluation.
        before = stats.h2d_bytes
        evaluator.apply_deltas(
            np.arange(REPLICAS), np.arange(REPLICAS) % problem.n
        )
        evaluator.evaluate_resident()
        per_iteration = stats.h2d_bytes - before
        # The delta packet: 8 bytes per flipped bit, nothing else.
        assert per_iteration == 8 * REPLICAS
        assert per_iteration < SOLUTION_ENTRY_BYTES * REPLICAS * problem.n

    def test_active_subset_adds_only_id_list(self, problem, neighborhood):
        evaluator = self._resident_evaluator(problem, neighborhood)
        stats = evaluator.context.stats
        active = np.array([0, 2, 4])
        before = stats.h2d_bytes
        evaluator.evaluate_resident(active)
        assert stats.h2d_bytes - before == SOLUTION_ENTRY_BYTES * active.size

    def test_begin_search_uploads_block_once(self, problem, neighborhood):
        evaluator = GPUEvaluator(problem, neighborhood)
        stats = evaluator.context.stats
        rng = np.random.default_rng(0)
        block = np.stack([problem.random_solution(rng) for _ in range(REPLICAS)])
        before = stats.h2d_bytes
        evaluator.begin_search(block)
        assert stats.h2d_bytes - before == (
            SOLUTION_ENTRY_BYTES * REPLICAS * problem.n
        )
        # Full-neighborhood evaluations afterwards upload nothing.
        before = stats.h2d_bytes
        evaluator.evaluate_resident()
        assert stats.h2d_bytes == before

    def test_reduced_run_timeline_is_valid_per_stream(self, problem, neighborhood):
        evaluator = GPUEvaluator(problem, neighborhood)
        runner = MultiStartRunner(
            evaluator, max_iterations=MAX_ITERATIONS, transfer_mode="reduced"
        )
        runner.run(seeds=_seeds())
        for stream in evaluator.context.timeline.streams.values():
            intervals = stream.intervals
            assert all(iv.end >= iv.start for iv in intervals)
            for earlier, later in zip(intervals, intervals[1:]):
                assert later.start >= earlier.end

    def test_tabu_mask_upload_can_hide_under_kernel(self, problem, neighborhood):
        evaluator = GPUEvaluator(problem, neighborhood)
        runner = MultiStartRunner(
            evaluator, max_iterations=MAX_ITERATIONS, transfer_mode="reduced"
        )
        runner.run(seeds=_seeds())
        assert evaluator.context.timeline.overlap_saved > 0.0

    def test_fetch_fitnesses_accounts_single_entries(self, problem, neighborhood):
        evaluator = self._resident_evaluator(problem, neighborhood)
        reference = evaluator.evaluate_resident()
        stats = evaluator.context.stats
        before = stats.d2h_bytes
        values = evaluator.fetch_fitnesses([1, 3], [0, 5])
        assert stats.d2h_bytes - before == 2 * FITNESS_BYTES
        assert values == pytest.approx(reference[[1, 3], [0, 5]])

    def test_fetch_fitnesses_handles_unsorted_replica_ids(self, problem, neighborhood):
        evaluator = self._resident_evaluator(problem, neighborhood)
        full = evaluator.evaluate_resident()
        unsorted_ids = np.array([4, 0, 2])
        evaluator.evaluate_resident(unsorted_ids)
        values = evaluator.fetch_fitnesses([0, 4, 2], [1, 2, 3])
        assert values == pytest.approx(full[[0, 4, 2], [1, 2, 3]])
        with pytest.raises(KeyError):
            evaluator.fetch_fitnesses([1], [0])


class TestSessionLifecycle:
    def test_resident_calls_require_begin(self, problem, neighborhood):
        evaluator = GPUEvaluator(problem, neighborhood)
        with pytest.raises(RuntimeError):
            evaluator.evaluate_resident()
        with pytest.raises(RuntimeError):
            evaluator.apply_deltas([0], [0])

    def test_begin_search_validates_block(self, problem, neighborhood):
        evaluator = GPUEvaluator(problem, neighborhood)
        with pytest.raises(ValueError):
            evaluator.begin_search(np.zeros((2, problem.n + 1), dtype=np.int8))
        with pytest.raises(ValueError):
            evaluator.begin_search(np.zeros((0, problem.n), dtype=np.int8))

    def test_apply_deltas_validates_indices(self, problem, neighborhood):
        evaluator = GPUEvaluator(problem, neighborhood)
        evaluator.begin_search(np.zeros((2, problem.n), dtype=np.int8))
        with pytest.raises(IndexError):
            evaluator.apply_deltas([5], [0])
        with pytest.raises(IndexError):
            evaluator.apply_deltas([0], [problem.n])
        with pytest.raises(ValueError):
            evaluator.apply_deltas([0, 1], [0])

    def test_end_search_frees_session_buffers(self, problem, neighborhood):
        evaluator = self._make_session(problem, neighborhood)
        owner = str(id(evaluator))
        assert any(
            owner in name.split(":")[1:]
            for name in evaluator.context.memory.allocations
        )
        evaluator.end_search()
        session_kinds = {"resident", "deltas", "reduction_packet", "reduced"}
        leftovers = [
            name
            for name in evaluator.context.memory.allocations
            if name.split(":")[0] in session_kinds
        ]
        assert leftovers == []

    def test_close_releases_every_evaluator_buffer(self, problem, neighborhood):
        context_holder = GPUEvaluator(problem, neighborhood)
        context = context_holder.context
        context_holder.close()
        baseline = context.memory.allocated_bytes
        # Many evaluators sharing one context must not leak device memory.
        for _ in range(5):
            evaluator = GPUEvaluator(problem, neighborhood, context=context)
            evaluator.evaluate(problem.random_solution(np.random.default_rng(1)))
            evaluator.begin_search(np.zeros((2, problem.n), dtype=np.int8))
            evaluator.evaluate_resident(reduce="argmin")
            evaluator.close()
            assert context.memory.allocated_bytes == baseline

    def test_closed_evaluator_rejects_further_use(self, problem, neighborhood):
        evaluator = GPUEvaluator(problem, neighborhood)
        solution = problem.random_solution(np.random.default_rng(3))
        evaluator.evaluate(solution)
        evaluator.close()
        # A closed evaluator's buffers escaped the device-memory model, so
        # every evaluation entry point must refuse to run.
        with pytest.raises(RuntimeError, match="closed"):
            evaluator.evaluate(solution)
        with pytest.raises(RuntimeError, match="closed"):
            evaluator.evaluate_many(solution[None, :])
        with pytest.raises(RuntimeError, match="closed"):
            evaluator.begin_search(solution[None, :])

    def test_context_manager_closes(self, problem, neighborhood):
        with GPUEvaluator(problem, neighborhood) as evaluator:
            evaluator.evaluate(problem.random_solution(np.random.default_rng(2)))
        assert not any(
            str(id(evaluator)) in name.split(":")[1:]
            for name in evaluator.context.memory.allocations
        )

    def _make_session(self, problem, neighborhood):
        evaluator = GPUEvaluator(problem, neighborhood)
        evaluator.begin_search(np.zeros((2, problem.n), dtype=np.int8))
        evaluator.evaluate_resident(reduce="argmin")
        return evaluator


class TestModeValidation:
    def test_cpu_evaluator_rejects_resident_modes(self, problem, neighborhood):
        evaluator = CPUEvaluator(problem, neighborhood)
        with pytest.raises(ValueError, match="device-resident"):
            TabuSearch(evaluator, transfer_mode="delta")
        with pytest.raises(ValueError, match="device-resident"):
            MultiStartRunner(evaluator, transfer_mode="reduced")

    def test_unknown_mode_rejected(self, problem, neighborhood):
        evaluator = GPUEvaluator(problem, neighborhood)
        with pytest.raises(ValueError, match="transfer_mode"):
            TabuSearch(evaluator, transfer_mode="compressed")
        with pytest.raises(ValueError, match="transfer_mode"):
            MultiStartRunner(evaluator, transfer_mode="compressed")

    def test_algorithm_without_reduction_rejects_reduced(self, problem, neighborhood):
        class NoReduction(NeighborhoodLocalSearch):
            def select_move(self, *args, **kwargs):  # pragma: no cover
                return None

        evaluator = GPUEvaluator(problem, neighborhood)
        with pytest.raises(ValueError, match="fused reduction"):
            NoReduction(evaluator, transfer_mode="reduced")
        # delta mode is fine: the full fitness matrix still comes down.
        NoReduction(evaluator, transfer_mode="delta")


class TestHarnessIntegration:
    def test_experiment_rows_identical_and_annotated(self):
        rows = {}
        for mode in TRANSFER_MODES:
            rows[mode] = run_ppp_experiment(
                SPEC,
                1,
                trials=4,
                max_iterations=20,
                evaluator_factory="gpu",
                trial_mode="batched",
                transfer_mode=mode,
            )
        reference = [
            (t.fitness, t.iterations, t.success) for t in rows["full"].trials
        ]
        for mode, row in rows.items():
            assert [
                (t.fitness, t.iterations, t.success) for t in row.trials
            ] == reference
            assert row.transfer_mode == mode
            assert row.h2d_bytes > 0 and row.d2h_bytes > 0
            assert row.sim_elapsed_s > 0
        assert rows["reduced"].d2h_bytes < rows["full"].d2h_bytes
        assert rows["delta"].h2d_bytes < rows["full"].h2d_bytes
        table = format_experiment_table([rows["reduced"]])
        assert "Mode" in table and "reduced" in table
        assert "H2D" in table

    def test_transfer_columns_hidden_for_cpu_rows(self):
        row = run_ppp_experiment(SPEC, 1, trials=2, max_iterations=10)
        table = format_experiment_table([row])
        assert "H2D" not in table
