"""Integration tests of the interconnect engine across the search stack.

The contract the contention model must honour end to end:

* **trajectories are a pure function of the seeds** — the topology choice
  changes timing only, never a fitness or an iteration count;
* **contended makespans dominate dedicated ones** — sharing the host root
  complex can only slow the modeled run down;
* **no transfer path bypasses the engine** — every host-facing byte of
  every transfer mode (uploads, delta packets, reduced downloads,
  persistent ring drains and stop flags, single-entry fetches, migration
  round trips) shows up on the uplink, so uplink bytes equal the summed
  h2d/d2h counters exactly.
"""

import numpy as np
import pytest

from repro.core import GPUEvaluator, MultiGPUEvaluator
from repro.gpu import GTX_280, GTX_8800
from repro.harness import format_experiment_table, run_ppp_experiment
from repro.localsearch import TabuSearch
from repro.localsearch.multistart import MultiStartRunner
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import OneMax
from repro.problems.instances import make_table_instance

TOPOLOGIES = ("dedicated", "shared", "switched", "nvlink")
MODES = ("full", "delta", "reduced", "persistent")


def run_experiment(topology, transfer_mode="reduced", devices=4):
    return run_ppp_experiment(
        (21, 21),
        2,
        trials=4,
        max_iterations=6,
        evaluator_factory="multi-gpu",
        trial_mode="batched",
        transfer_mode=transfer_mode,
        devices=devices,
        topology=topology,
    )


def records(row):
    return [(t.fitness, t.iterations, t.success) for t in row.trials]


class TestTrajectoryInvariance:
    def test_topology_never_changes_trajectories(self):
        rows = {topo: run_experiment(topo) for topo in TOPOLOGIES}
        reference = records(rows["dedicated"])
        for topo, row in rows.items():
            assert records(row) == reference, f"{topo} diverged"
        # ... but the contended fabrics are slower and account their stalls.
        dedicated = rows["dedicated"]
        assert dedicated.uplink_busy_s == 0.0
        assert dedicated.contention_stall_s == 0.0
        assert dedicated.topology == "dedicated"
        for topo in ("shared", "switched", "nvlink"):
            row = rows[topo]
            assert row.uplink_busy_s > 0.0
            assert row.contention_stall_s > 0.0
            assert row.topology == topo
            assert 0.0 < row.uplink_utilization <= 1.0
        # Same peer fabric, contended host uplink: never faster than the
        # dedicated model.  (nvlink is exempt — its faster peer mesh can
        # outweigh the uplink contention.)
        for topo in ("shared", "switched"):
            assert rows[topo].sim_elapsed_s >= dedicated.sim_elapsed_s

    @pytest.mark.parametrize("transfer_mode", MODES)
    def test_every_transfer_mode_is_topology_invariant(self, transfer_mode):
        contended = run_experiment("shared", transfer_mode=transfer_mode)
        dedicated = run_experiment(None, transfer_mode=transfer_mode)
        assert records(contended) == records(dedicated)
        assert contended.sim_elapsed_s >= dedicated.sim_elapsed_s


class TestUploadContention:
    def test_four_concurrent_replica_uploads_see_a_quarter_of_the_uplink(self):
        # The acceptance scenario: a 4-device resident session uploads its
        # replica slices simultaneously.  On the shared root complex the
        # upload phase must take at least 3x the dedicated-link time (each
        # slice crawls at ~1/4 of the uplink), with identical functional
        # state on the devices.
        problem = OneMax(4096)
        neighborhood = KHammingNeighborhood(problem.n, 1)
        rng = np.random.default_rng(5)
        solutions = rng.integers(0, 2, size=(1024, problem.n)).astype(np.int8)
        phases = {}
        blocks = {}
        for topology in ("dedicated", "shared"):
            evaluator = MultiGPUEvaluator(
                problem, neighborhood, devices=4, topology=topology
            )
            evaluator.begin_search(solutions)
            phases[topology] = evaluator.scheduler.makespan
            blocks[topology] = np.concatenate(
                [sub._resident for sub, _lo, _hi in evaluator._resident_parts()]
            )
            evaluator.close()
        assert phases["shared"] >= 3.0 * phases["dedicated"]
        assert np.array_equal(blocks["shared"], blocks["dedicated"])
        assert np.array_equal(blocks["shared"], solutions)


def uplink_vs_host_counters(evaluator):
    engine = evaluator.pool.engine
    host_bytes = float(
        sum(ctx.stats.h2d_bytes + ctx.stats.d2h_bytes for ctx in evaluator.pool.contexts)
    )
    peer_bytes = float(sum(ctx.stats.p2p_bytes for ctx in evaluator.pool.contexts))
    peer_on_links = sum(
        engine.link_bytes(name)
        for name in engine.topology.links
        if name.startswith(("p2p:", "nvlink:", "switch"))
    )
    return engine.uplink_bytes(), host_bytes, peer_on_links, peer_bytes


class TestNoPathBypassesTheEngine:
    @pytest.mark.parametrize("transfer_mode", MODES)
    def test_uplink_bytes_match_host_counters_exactly(self, transfer_mode):
        # Every host-facing transfer of every mode must cross the uplink:
        # full-mode uploads and fitness downloads, delta packets, reduced
        # result pairs, persistent ring drains and stop flags, robust-tabu
        # fetches.  Peer-routed bytes live on the peer links, never on the
        # uplink.
        problem = make_table_instance((19, 19), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 2)
        evaluator = MultiGPUEvaluator(
            problem, neighborhood, devices=3, topology="shared"
        )
        search = TabuSearch(evaluator, max_iterations=5, transfer_mode=transfer_mode)
        search.run(rng=7)
        uplink, host, peer_links, peer_stats = uplink_vs_host_counters(evaluator)
        assert uplink == host
        assert peer_links == peer_stats

    def test_multistart_with_migration_stays_conserved(self):
        problem = make_table_instance((19, 19), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 2)
        evaluator = MultiGPUEvaluator(
            problem, neighborhood, devices=3, topology="shared"
        )
        runner = MultiStartRunner(
            evaluator,
            algorithm="tabu",
            max_iterations=6,
            transfer_mode="reduced",
            rebalance_every=2,
        )
        runner.run(seeds=range(9))
        uplink, host, peer_links, peer_stats = uplink_vs_host_counters(evaluator)
        assert uplink == host
        assert peer_links == peer_stats

    def test_host_round_trip_migration_crosses_the_uplink(self):
        # A mixed pool with a peer-incapable G80: migrated rows must take
        # the host round trip, both legs priced on the shared uplink.
        problem = make_table_instance((19, 19), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 2)
        evaluator = MultiGPUEvaluator(
            problem,
            neighborhood,
            devices=[GTX_280, GTX_8800],
            topology="shared",
        )
        rng = np.random.default_rng(3)
        solutions = rng.integers(0, 2, size=(12, problem.n)).astype(np.int8)
        evaluator.begin_search(solutions)
        before_uplink = evaluator.pool.engine.uplink_bytes()
        # Keep only replicas owned by the first device active: the
        # rebalance must push rows across the host.
        active = np.zeros(12, dtype=bool)
        lo, hi = evaluator._replica_ranges[0]
        active[lo:hi] = True
        migrated = evaluator.rebalance_resident(active=active)
        assert migrated > 0
        assert evaluator.pool.engine.uplink_bytes() > before_uplink
        uplink, host, _peer_links, peer_stats = uplink_vs_host_counters(evaluator)
        assert uplink == host
        assert peer_stats == 0.0
        evaluator.close()

    def test_single_gpu_shared_topology_accounts_everything(self):
        problem = make_table_instance((19, 19), trial=0)
        neighborhood = KHammingNeighborhood(problem.n, 2)
        evaluator = GPUEvaluator(problem, neighborhood, topology="shared")
        search = TabuSearch(evaluator, max_iterations=5, transfer_mode="reduced")
        search.run(rng=7)
        engine = evaluator.context.engine
        ctx = evaluator.context
        assert engine.uplink_bytes() == float(ctx.stats.h2d_bytes + ctx.stats.d2h_bytes)


class TestHarnessSurface:
    def test_row_fields_and_table_columns(self):
        row = run_experiment("shared")
        payload = row.as_dict()
        assert payload["topology"] == "shared"
        assert payload["uplink_busy_s"] > 0.0
        assert payload["contention_stall_s"] > 0.0
        assert payload["uplink_utilization"] == pytest.approx(
            row.uplink_busy_s / row.sim_elapsed_s
        )
        table = format_experiment_table([row])
        assert "Topology" in table and "Uplink busy" in table
        assert "Contention stall" in table and "shared" in table
        # Dedicated rows keep the legacy layout unless asked.
        legacy = run_experiment(None)
        legacy_table = format_experiment_table([legacy])
        assert "Uplink busy" not in legacy_table
        forced = format_experiment_table([legacy], include_interconnect=True)
        assert "Uplink busy" in forced

    def test_topology_option_requires_gpu_spec(self):
        with pytest.raises(ValueError, match="topology"):
            run_ppp_experiment(
                (15, 15), 1, trials=1, max_iterations=2,
                evaluator_factory="cpu", topology="shared",
            )

    def test_parallel_trials_accept_topology(self):
        row = run_ppp_experiment(
            (15, 15),
            1,
            trials=2,
            max_iterations=3,
            evaluator_factory="gpu",
            trial_mode="parallel",
            n_jobs=2,
            topology="shared",
        )
        assert row.topology == "shared"
        reference = run_ppp_experiment(
            (15, 15), 1, trials=2, max_iterations=3,
            evaluator_factory="gpu", trial_mode="serial",
        )
        assert records(row) == records(reference)
