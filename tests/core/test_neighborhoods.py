"""Tests for the k-Hamming neighborhood structures."""

import numpy as np
import pytest

from repro.neighborhoods import (
    KHammingNeighborhood,
    NeighborhoodSlice,
    OneHammingNeighborhood,
    ThreeHammingNeighborhood,
    TwoHammingNeighborhood,
)


class TestSizes:
    def test_paper_size_formulas(self):
        n = 117
        assert OneHammingNeighborhood(n).size == n
        assert TwoHammingNeighborhood(n).size == n * (n - 1) // 2
        assert ThreeHammingNeighborhood(n).size == n * (n - 1) * (n - 2) // 6

    def test_len_matches_size(self):
        nb = TwoHammingNeighborhood(10)
        assert len(nb) == nb.size == 45

    def test_order_property(self):
        assert OneHammingNeighborhood(10).order == 1
        assert TwoHammingNeighborhood(10).order == 2
        assert ThreeHammingNeighborhood(10).order == 3
        assert KHammingNeighborhood(10, 4).order == 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KHammingNeighborhood(10, 0)
        with pytest.raises(ValueError):
            KHammingNeighborhood(3, 4)


class TestMoves:
    def test_all_moves_shape_and_uniqueness(self):
        nb = TwoHammingNeighborhood(9)
        moves = nb.moves()
        assert moves.shape == (nb.size, 2)
        assert len({tuple(m) for m in moves}) == nb.size

    def test_subset_moves(self):
        nb = ThreeHammingNeighborhood(11)
        idx = np.array([0, 5, nb.size - 1])
        moves = nb.moves(idx)
        assert moves.shape == (3, 3)
        assert np.array_equal(moves, nb.mapping.from_flat_batch(idx))

    def test_generic_k_neighborhood_uses_exact_mapping(self):
        nb = KHammingNeighborhood(8, 4)
        assert nb.size == 70
        moves = nb.moves()
        assert np.all(np.diff(moves, axis=1) > 0)

    def test_random_move_is_valid_and_deterministic(self):
        nb = ThreeHammingNeighborhood(20)
        mv1 = nb.random_move(rng=7)
        mv2 = nb.random_move(rng=7)
        assert mv1 == mv2
        assert len(mv1) == 3 and 0 <= mv1[0] < mv1[1] < mv1[2] < 20


class TestPartition:
    def test_partition_covers_and_balances(self):
        nb = TwoHammingNeighborhood(30)  # size 435
        parts = nb.partition(4)
        assert len(parts) == 4
        assert parts[0].start == 0 and parts[-1].stop == nb.size
        sizes = [p.size for p in parts]
        assert sum(sizes) == nb.size and max(sizes) - min(sizes) <= 1
        for a, b in zip(parts, parts[1:]):
            assert a.stop == b.start

    def test_partition_indices(self):
        s = NeighborhoodSlice(3, 7)
        assert np.array_equal(s.indices(), [3, 4, 5, 6])
        assert s.size == 4

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            TwoHammingNeighborhood(10).partition(0)

    def test_partition_more_parts_than_moves(self):
        nb = OneHammingNeighborhood(3)
        parts = nb.partition(5)
        assert sum(p.size for p in parts) == 3
        assert len(parts) == 5
