"""Tests for the texture-memory cost model (the "GPUTexture" curve of Figure 8)."""

import pytest

from repro.core import GPUEvaluator, iteration_times, kernel_cost_profile
from repro.gpu import GPUTimingModel, GTX_280, KernelCostProfile, grid_for
from repro.neighborhoods import OneHammingNeighborhood, TwoHammingNeighborhood
from repro.problems import OneMax, PermutedPerceptronProblem


@pytest.fixture(scope="module")
def ppp():
    return PermutedPerceptronProblem.generate(73, 73, rng=0)


class TestCostProfileSplit:
    def test_ppp_declares_texture_eligible_bytes(self, ppp):
        cost = ppp.cost_profile(2)
        assert 0 < cost["texture_bytes"] < cost["bytes"]
        # The texture-eligible portion is the matrix columns: 4 bytes * k * m.
        assert cost["texture_bytes"] == 4.0 * 2 * ppp.m

    def test_kernel_cost_profile_moves_bytes_to_texture(self, ppp):
        plain = kernel_cost_profile(ppp, 2)
        textured = kernel_cost_profile(ppp, 2, use_texture=True)
        assert plain.texture_bytes == 0.0
        assert textured.texture_bytes > 0.0
        # Total memory traffic is conserved.
        assert plain.gmem_bytes == pytest.approx(textured.gmem_bytes + textured.texture_bytes)
        assert plain.flops == textured.flops

    def test_problems_without_texture_data_are_unaffected(self):
        problem = OneMax(32)
        plain = kernel_cost_profile(problem, 1)
        textured = kernel_cost_profile(problem, 1, use_texture=True)
        assert textured.texture_bytes == 0.0
        assert textured.gmem_bytes == plain.gmem_bytes


class TestTimingModelWithTexture:
    def test_texture_reads_are_cheaper_for_memory_bound_kernels(self):
        model = GPUTimingModel(GTX_280)
        cfg = grid_for(1_000_000, 256)
        plain = model.kernel_time(cfg, KernelCostProfile(flops=10, gmem_bytes=2000))
        textured = model.kernel_time(
            cfg, KernelCostProfile(flops=10, gmem_bytes=400, texture_bytes=1600)
        )
        assert textured.memory_time < plain.memory_time

    def test_scaled_preserves_texture_bytes(self):
        cost = KernelCostProfile(flops=10, gmem_bytes=100, texture_bytes=50)
        scaled = cost.scaled(2.0)
        assert scaled.texture_bytes == 100.0
        assert scaled.gmem_bytes == 200.0


class TestEndToEnd:
    def test_texture_helps_latency_bound_1hamming(self, ppp):
        neighborhood = OneHammingNeighborhood(ppp.n)
        plain = iteration_times(ppp, neighborhood)
        textured = iteration_times(ppp, neighborhood, use_texture=True)
        assert textured.gpu_time <= plain.gpu_time
        assert textured.cpu_time == plain.cpu_time  # CPU side unaffected

    def test_texture_never_hurts(self, ppp):
        for neighborhood in (OneHammingNeighborhood(ppp.n), TwoHammingNeighborhood(ppp.n)):
            plain = iteration_times(ppp, neighborhood)
            textured = iteration_times(ppp, neighborhood, use_texture=True)
            assert textured.gpu_time <= plain.gpu_time * 1.0001

    def test_gpu_evaluator_texture_option_is_functionally_identical(self, ppp):
        neighborhood = TwoHammingNeighborhood(ppp.n)
        solution = ppp.random_solution(5)
        plain = GPUEvaluator(ppp, neighborhood)
        textured = GPUEvaluator(ppp, neighborhood, use_texture_memory=True)
        import numpy as np

        assert np.array_equal(plain.evaluate(solution), textured.evaluate(solution))
        # ... but the simulated time differs (texture path is never slower).
        assert textured.stats.simulated_time <= plain.stats.simulated_time * 1.0001
